package ops

import (
	"math"
	"math/rand"
	"testing"

	"mocha/internal/types"
	"mocha/internal/vm"
)

func builtin(t *testing.T, name string) *Def {
	t.Helper()
	d, ok := Builtins().Lookup(name)
	if !ok {
		t.Fatalf("builtin %s not registered", name)
	}
	return d
}

// callBoth runs an operator natively and through the MVM (via its
// serialized, re-decoded, re-verified program — the exact path a shipped
// operator takes) and requires both to succeed.
func callBoth(t *testing.T, d *Def, args []types.Object) (native, shipped types.Object) {
	t.Helper()
	ns, err := NewNativeScalar(d)
	if err != nil {
		t.Fatal(err)
	}
	native, err = ns.Call(args)
	if err != nil {
		t.Fatalf("%s native: %v", d.Name, err)
	}
	// Ship the program: encode, decode, verify, load.
	prog, err := vm.Decode(d.Program().Encode())
	if err != nil {
		t.Fatal(err)
	}
	if err := vm.Verify(prog); err != nil {
		t.Fatal(err)
	}
	vs, err := NewVMScalar(vm.New(vm.Limits{}), prog, d.Ret)
	if err != nil {
		t.Fatal(err)
	}
	shipped, err = vs.Call(args)
	if err != nil {
		t.Fatalf("%s shipped: %v", d.Name, err)
	}
	return native, shipped
}

func wantClose(t *testing.T, name string, a, b types.Object, tol float64) {
	t.Helper()
	da, aok := a.(types.Double)
	db, bok := b.(types.Double)
	if !aok || !bok {
		t.Fatalf("%s: expected doubles, got %T and %T", name, a, b)
	}
	if math.Abs(float64(da)-float64(db)) > tol {
		t.Errorf("%s: native=%v shipped=%v differ beyond %g", name, da, db, tol)
	}
}

func randRaster(rng *rand.Rand, maxDim int) types.Raster {
	w, h := rng.Intn(maxDim)+1, rng.Intn(maxDim)+1
	px := make([]byte, w*h)
	rng.Read(px)
	return types.NewRaster(w, h, px)
}

func randPolygon(rng *rand.Rand, maxVerts int) types.Polygon {
	n := rng.Intn(maxVerts) + 3
	pts := make([]types.Point, n)
	for i := range pts {
		pts[i] = types.Point{X: rng.Float32() * 100, Y: rng.Float32() * 100}
	}
	return types.NewPolygon(pts)
}

func randGraph(rng *rand.Rand, maxVerts int) types.Graph {
	nv := rng.Intn(maxVerts) + 2
	verts := make([]types.Point, nv)
	for i := range verts {
		verts[i] = types.Point{X: rng.Float32() * 1000, Y: rng.Float32() * 1000}
	}
	ne := rng.Intn(2 * nv)
	edges := make([]types.GraphEdge, ne)
	for i := range edges {
		edges[i] = types.GraphEdge{A: int32(rng.Intn(nv)), B: int32(rng.Intn(nv))}
	}
	return types.NewGraph(verts, edges)
}

func TestAvgEnergyEquivalence(t *testing.T) {
	d := builtin(t, "AvgEnergy")
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 25; i++ {
		r := randRaster(rng, 40)
		native, shipped := callBoth(t, d, []types.Object{r})
		wantClose(t, "AvgEnergy", native, shipped, 1e-9)
		if got := float64(native.(types.Double)); math.Abs(got-r.AvgEnergy()) > 1e-9 {
			t.Fatalf("native AvgEnergy=%g, types=%g", got, r.AvgEnergy())
		}
	}
}

func TestAvgEnergyEmptyRaster(t *testing.T) {
	d := builtin(t, "AvgEnergy")
	native, shipped := callBoth(t, d, []types.Object{types.NewRaster(0, 0, nil)})
	wantClose(t, "AvgEnergy(empty)", native, shipped, 0)
}

func TestClipEquivalence(t *testing.T) {
	d := builtin(t, "Clip")
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 25; i++ {
		r := randRaster(rng, 30)
		win := types.Rectangle{
			XMin: float32(rng.Intn(40) - 5), YMin: float32(rng.Intn(40) - 5),
			XMax: float32(rng.Intn(40) - 5), YMax: float32(rng.Intn(40) - 5),
		}
		if win.XMax < win.XMin {
			win.XMin, win.XMax = win.XMax, win.XMin
		}
		if win.YMax < win.YMin {
			win.YMin, win.YMax = win.YMax, win.YMin
		}
		native, shipped := callBoth(t, d, []types.Object{r, win})
		nr, sr := native.(types.Raster), shipped.(types.Raster)
		if nr.Width() != sr.Width() || nr.Height() != sr.Height() {
			t.Fatalf("clip dims differ: native %dx%d shipped %dx%d", nr.Width(), nr.Height(), sr.Width(), sr.Height())
		}
		if string(nr.Pixels()) != string(sr.Pixels()) {
			t.Fatal("clip pixels differ between native and shipped")
		}
	}
}

func TestIncrResEquivalence(t *testing.T) {
	d := builtin(t, "IncrRes")
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 15; i++ {
		r := randRaster(rng, 16)
		k := types.Int(rng.Intn(4)) // includes 0 → clamped to 1
		native, shipped := callBoth(t, d, []types.Object{r, k})
		nr, sr := native.(types.Raster), shipped.(types.Raster)
		if string(nr.Payload()) != string(sr.Payload()) {
			t.Fatalf("IncrRes output differs for k=%d", k)
		}
		kk := max(int(k), 1)
		if nr.Width() != r.Width()*kk || len(nr.Pixels()) != kk*kk*len(r.Pixels()) {
			t.Fatalf("IncrRes(%d) wrong inflation: %dx%d from %dx%d", kk, nr.Width(), nr.Height(), r.Width(), r.Height())
		}
	}
}

func TestRotate90Equivalence(t *testing.T) {
	d := builtin(t, "Rotate90")
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 15; i++ {
		r := randRaster(rng, 20)
		native, shipped := callBoth(t, d, []types.Object{r})
		if string(native.(types.Raster).Payload()) != string(shipped.(types.Raster).Payload()) {
			t.Fatal("Rotate90 output differs")
		}
	}
}

func TestAreaPerimeterEquivalence(t *testing.T) {
	da, dp := builtin(t, "Area"), builtin(t, "Perimeter")
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 25; i++ {
		p := randPolygon(rng, 30)
		native, shipped := callBoth(t, da, []types.Object{p})
		wantClose(t, "Area", native, shipped, 1e-6*(1+p.Area()))
		native, shipped = callBoth(t, dp, []types.Object{p})
		wantClose(t, "Perimeter", native, shipped, 1e-6*(1+p.Perimeter()))
	}
}

func TestGraphOpsEquivalence(t *testing.T) {
	dn, dl := builtin(t, "NumVertices"), builtin(t, "TotalLength")
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 25; i++ {
		g := randGraph(rng, 40)
		native, shipped := callBoth(t, dn, []types.Object{g})
		if native.(types.Int) != shipped.(types.Int) || int(native.(types.Int)) != g.NumVertices() {
			t.Fatalf("NumVertices: native=%v shipped=%v want=%d", native, shipped, g.NumVertices())
		}
		native, shipped = callBoth(t, dl, []types.Object{g})
		wantClose(t, "TotalLength", native, shipped, 1e-6*(1+g.TotalLength()))
	}
}

func TestOverlapsEquivalence(t *testing.T) {
	d := builtin(t, "Overlaps")
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 100; i++ {
		mk := func() types.Rectangle {
			x, y := rng.Float32()*10, rng.Float32()*10
			return types.Rectangle{XMin: x, YMin: y, XMax: x + rng.Float32()*5, YMax: y + rng.Float32()*5}
		}
		a, b := mk(), mk()
		native, shipped := callBoth(t, d, []types.Object{a, b})
		if native.(types.Bool) != shipped.(types.Bool) {
			t.Fatalf("Overlaps(%v, %v): native=%v shipped=%v", a, b, native, shipped)
		}
	}
}

func TestDiffEquivalence(t *testing.T) {
	d := builtin(t, "Diff")
	native, shipped := callBoth(t, d, []types.Object{types.Double(3.5), types.Double(10)})
	wantClose(t, "Diff", native, shipped, 0)
	if native.(types.Double) != 6.5 {
		t.Errorf("Diff(3.5,10) = %v, want 6.5", native)
	}
}

func TestNativeTypeErrors(t *testing.T) {
	for _, name := range []string{"AvgEnergy", "Area", "NumVertices", "TotalLength"} {
		d := builtin(t, name)
		s, err := NewNativeScalar(d)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Call([]types.Object{types.Int(1)}); err == nil {
			t.Errorf("%s accepted INT argument", name)
		}
	}
}

func TestRegistryBasics(t *testing.T) {
	r := Builtins()
	names := r.Names()
	if len(names) < 13 {
		t.Fatalf("expected at least 13 builtin operators, got %d: %v", len(names), names)
	}
	if _, ok := r.Lookup("avgenergy"); !ok {
		t.Error("lookup should be case-insensitive")
	}
	if _, ok := r.Lookup("NoSuchOp"); ok {
		t.Error("lookup invented an operator")
	}
	// Re-registration replaces (operator upgrade).
	d, _ := r.Lookup("Diff")
	upgraded := *d
	upgraded.URI = "mocha://ops/Diff#2.0"
	if err := r.Register(&upgraded); err != nil {
		t.Fatal(err)
	}
	got, _ := r.Lookup("Diff")
	if got.URI != "mocha://ops/Diff#2.0" {
		t.Error("upgrade did not replace definition")
	}
}

func TestRegisterValidation(t *testing.T) {
	r := NewRegistry()
	if err := r.Register(&Def{Name: "", Source: "x"}); err == nil {
		t.Error("nameless def accepted")
	}
	if err := r.Register(&Def{Name: "X"}); err == nil {
		t.Error("sourceless def accepted")
	}
	if err := r.Register(&Def{Name: "X", Source: "garbage"}); err == nil {
		t.Error("unassemblable source accepted")
	}
	// Scalar source missing eval.
	if err := r.Register(&Def{Name: "X", Source: "program X\nfunc other args=0 locals=0\nret\nend"}); err == nil {
		t.Error("missing eval accepted")
	}
	// Aggregate source missing protocol functions.
	if err := r.Register(&Def{Name: "X", Aggregate: true, Source: "program X\nfunc eval args=0 locals=0\nret\nend"}); err == nil {
		t.Error("aggregate without protocol accepted")
	}
	// Arg count mismatch between def and source.
	if err := r.Register(&Def{
		Name: "X", Args: []types.Kind{types.KindInt, types.KindInt},
		Source: "program X\nfunc eval args=1 locals=0\narg 0\nret\nend",
	}); err == nil {
		t.Error("arg count mismatch accepted")
	}
}

func TestProgramChecksumStable(t *testing.T) {
	a := builtin(t, "AvgEnergy").Program().Checksum()
	b := builtin(t, "AvgEnergy").Program().Checksum()
	if a != b {
		t.Error("checksum of identical builtins differs across registries")
	}
	if a == builtin(t, "Clip").Program().Checksum() {
		t.Error("different programs share a checksum")
	}
}

func TestGeom2Equivalence(t *testing.T) {
	dc, db2, de := builtin(t, "Centroid"), builtin(t, "BoundingBox"), builtin(t, "NumEdges")
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 25; i++ {
		p := randPolygon(rng, 25)
		native, shipped := callBoth(t, dc, []types.Object{p})
		np, sp := native.(types.Point), shipped.(types.Point)
		if math.Abs(float64(np.X-sp.X)) > 1e-3 || math.Abs(float64(np.Y-sp.Y)) > 1e-3 {
			t.Fatalf("Centroid: native %v shipped %v", np, sp)
		}
		native, shipped = callBoth(t, db2, []types.Object{p})
		if native.(types.Rectangle) != shipped.(types.Rectangle) {
			t.Fatalf("BoundingBox: native %v shipped %v", native, shipped)
		}
		if native.(types.Rectangle) != p.BoundingBox() {
			t.Fatalf("BoundingBox wrong: %v vs %v", native, p.BoundingBox())
		}
		g := randGraph(rng, 20)
		native, shipped = callBoth(t, de, []types.Object{g})
		if native.(types.Int) != shipped.(types.Int) || int(native.(types.Int)) != g.NumEdges() {
			t.Fatalf("NumEdges: native %v shipped %v want %d", native, shipped, g.NumEdges())
		}
	}
	// Degenerate polygon.
	empty := types.NewPolygon(nil)
	native, shipped := callBoth(t, dc, []types.Object{empty})
	if native.(types.Point) != (types.Point{}) || shipped.(types.Point) != (types.Point{}) {
		t.Errorf("empty centroid: %v %v", native, shipped)
	}
}

func TestMakeRectEquivalence(t *testing.T) {
	d := builtin(t, "MakeRect")
	args := []types.Object{types.Double(1.5), types.Double(-2), types.Double(3), types.Double(4.25)}
	native, shipped := callBoth(t, d, args)
	want := types.Rectangle{XMin: 1.5, YMin: -2, XMax: 3, YMax: 4.25}
	if native.(types.Rectangle) != want || shipped.(types.Rectangle) != want {
		t.Errorf("MakeRect: native %v shipped %v want %v", native, shipped, want)
	}
}

func TestEstimateResultBytes(t *testing.T) {
	fixed := Def{ResultBytes: 8, ResultRatio: 2}
	if got := fixed.EstimateResultBytes(100); got != 8 {
		t.Errorf("fixed result = %d, want 8", got)
	}
	ratio := Def{ResultRatio: 0.5}
	if got := ratio.EstimateResultBytes(100); got != 50 {
		t.Errorf("ratio result = %d, want 50", got)
	}
}
