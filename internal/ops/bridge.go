package ops

import (
	"fmt"

	"mocha/internal/types"
	"mocha/internal/vm"
)

// ToVM converts a middleware object into an MVM value. Scalars map to VM
// scalars; spatial and large objects enter the VM as their raw wire
// payload bytes, which is exactly what the byte-level MVM instructions
// operate on.
func ToVM(o types.Object) vm.Value {
	switch v := o.(type) {
	case types.Null:
		return vm.IntVal(0)
	case types.Bool:
		return vm.BoolVal(bool(v))
	case types.Int:
		return vm.IntVal(int64(v))
	case types.Double:
		return vm.FloatVal(float64(v))
	case types.String_:
		return vm.StrVal(string(v))
	case types.Bytes:
		return vm.BytesVal(v)
	case types.Large:
		return vm.BytesVal(v.Payload())
	default:
		// Point and Rectangle are small but byte-addressable in the VM.
		return vm.BytesVal(o.AppendTo(nil))
	}
}

// FromVM converts an MVM result value back into a middleware object of
// the declared kind.
func FromVM(v vm.Value, k types.Kind) (types.Object, error) {
	switch k {
	case types.KindBool:
		if v.K != vm.VBool {
			return nil, fmt.Errorf("ops: operator returned %v, want bool", v.K)
		}
		return types.Bool(v.Bool()), nil
	case types.KindInt:
		if v.K != vm.VInt {
			return nil, fmt.Errorf("ops: operator returned %v, want int", v.K)
		}
		return types.Int(int32(v.I)), nil
	case types.KindDouble:
		switch v.K {
		case vm.VFloat:
			return types.Double(v.F), nil
		case vm.VInt:
			return types.Double(v.I), nil
		}
		return nil, fmt.Errorf("ops: operator returned %v, want double", v.K)
	case types.KindString:
		if v.K != vm.VStr {
			return nil, fmt.Errorf("ops: operator returned %v, want string", v.K)
		}
		return types.String_(v.S), nil
	case types.KindBytes:
		if v.K != vm.VBytes {
			return nil, fmt.Errorf("ops: operator returned %v, want bytes", v.K)
		}
		return types.Bytes(v.B), nil
	case types.KindPoint, types.KindRectangle, types.KindPolygon, types.KindGraph, types.KindRaster:
		if v.K != vm.VBytes {
			return nil, fmt.Errorf("ops: operator returned %v, want %v payload", v.K, k)
		}
		return types.FromPayload(k, v.B)
	}
	return nil, fmt.Errorf("ops: cannot convert VM result to %v", k)
}

// Scalar is an executable scalar operator instance bound to either its
// native implementation or a loaded MVM program. A DAP, which only has
// the shipped bytecode, always uses the VM path; a QPC holding the full
// library may use either.
type Scalar struct {
	name    string
	ret     types.Kind
	native  NativeFunc
	machine *vm.Machine
	prog    *vm.Program
	evalIdx int
}

// NewNativeScalar binds a definition's native implementation.
func NewNativeScalar(d *Def) (*Scalar, error) {
	if d.Native == nil {
		return nil, fmt.Errorf("ops: operator %s has no native implementation", d.Name)
	}
	return &Scalar{name: d.Name, ret: d.Ret, native: d.Native}, nil
}

// NewVMScalar binds a (possibly remotely received) MVM program as a
// scalar operator returning values of kind ret. The program must already
// be verified.
func NewVMScalar(m *vm.Machine, p *vm.Program, ret types.Kind) (*Scalar, error) {
	idx := p.FuncIndex("eval")
	if idx < 0 {
		return nil, fmt.Errorf("ops: program %s has no eval function", p.Name)
	}
	return &Scalar{name: p.Name, ret: ret, machine: m, prog: p, evalIdx: idx}, nil
}

// Name returns the operator name.
func (s *Scalar) Name() string { return s.name }

// Call evaluates the operator on one tuple's argument values.
func (s *Scalar) Call(args []types.Object) (types.Object, error) {
	if s.native != nil {
		return s.native(args)
	}
	vargs := make([]vm.Value, len(args))
	for i, a := range args {
		vargs[i] = ToVM(a)
	}
	var globals []vm.Value
	if s.prog.NGlobals > 0 {
		globals = make([]vm.Value, s.prog.NGlobals)
	}
	v, err := s.machine.Run(s.prog, s.evalIdx, globals, vargs)
	if err != nil {
		return nil, fmt.Errorf("ops: %s: %w", s.name, err)
	}
	return FromVM(v, s.ret)
}

// Aggregate is an executable aggregate operator instance. Each group in a
// GROUP BY gets its own instance (or a Reset between groups).
type Aggregate struct {
	name   string
	ret    types.Kind
	native NativeAggregate

	machine                           *vm.Machine
	prog                              *vm.Program
	globals                           []vm.Value
	resetIdx, updateIdx, summarizeIdx int
}

// NewNativeAggregate binds a definition's native aggregate.
func NewNativeAggregate(d *Def) (*Aggregate, error) {
	if d.NewNativeAgg == nil {
		return nil, fmt.Errorf("ops: aggregate %s has no native implementation", d.Name)
	}
	return &Aggregate{name: d.Name, ret: d.Ret, native: d.NewNativeAgg()}, nil
}

// NewVMAggregate binds a (possibly remotely received) MVM program as an
// aggregate. The program must already be verified.
func NewVMAggregate(m *vm.Machine, p *vm.Program, ret types.Kind) (*Aggregate, error) {
	a := &Aggregate{
		name: p.Name, ret: ret, machine: m, prog: p,
		resetIdx:     p.FuncIndex("reset"),
		updateIdx:    p.FuncIndex("update"),
		summarizeIdx: p.FuncIndex("summarize"),
		globals:      make([]vm.Value, p.NGlobals),
	}
	if a.resetIdx < 0 || a.updateIdx < 0 || a.summarizeIdx < 0 {
		return nil, fmt.Errorf("ops: program %s does not implement the aggregate protocol", p.Name)
	}
	return a, nil
}

// Name returns the aggregate name.
func (a *Aggregate) Name() string { return a.name }

// Reset clears accumulated state.
func (a *Aggregate) Reset() error {
	if a.native != nil {
		a.native.Reset()
		return nil
	}
	_, err := a.machine.Run(a.prog, a.resetIdx, a.globals, nil)
	return err
}

// Update folds one tuple's argument values into the state.
func (a *Aggregate) Update(args []types.Object) error {
	if a.native != nil {
		return a.native.Update(args)
	}
	vargs := make([]vm.Value, len(args))
	for i, x := range args {
		vargs[i] = ToVM(x)
	}
	_, err := a.machine.Run(a.prog, a.updateIdx, a.globals, vargs)
	return err
}

// Summarize produces the aggregate value.
func (a *Aggregate) Summarize() (types.Object, error) {
	if a.native != nil {
		return a.native.Summarize()
	}
	v, err := a.machine.Run(a.prog, a.summarizeIdx, a.globals, nil)
	if err != nil {
		return nil, err
	}
	return FromVM(v, a.ret)
}
