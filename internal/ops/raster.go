package ops

import (
	"fmt"

	"mocha/internal/types"
)

// Raster operator definitions: AvgEnergy (the paper's running example of
// a data-reducing projection), Clip (Q2), IncrRes (Q3, data-inflating)
// and Rotate90 (a visualization operator with VRF exactly 1).

const avgEnergySrc = `
program AvgEnergy version 1.0
const zero float 0
func eval args=1 locals=3
  ; locals: 0=sum 1=off 2=len
  pushi 0
  store 0
  pushi 8
  store 1
  arg 0
  blen
  store 2
  load 2
  pushi 8
  le
  jnz empty
loop:
  load 1
  load 2
  ge
  jnz done
  load 0
  arg 0
  load 1
  ldu8
  addi
  store 0
  load 1
  pushi 1
  addi
  store 1
  jmp loop
done:
  load 0
  i2f
  load 2
  pushi 8
  subi
  i2f
  divf
  ret
empty:
  const zero
  ret
end`

const clipSrc = `
program Clip version 1.0
func clampi args=3 locals=0
  ; clampi(v, lo, hi)
  arg 0
  arg 1
  lt
  jz chkhi
  arg 1
  ret
chkhi:
  arg 0
  arg 2
  gt
  jz ok
  arg 2
  ret
ok:
  arg 0
  ret
end
func eval args=2 locals=9
  ; args: 0=raster payload, 1=rectangle payload (pixel coordinates)
  ; locals: 0=w 1=h 2=x0 3=y0 4=w2 5=h2 6=out 7=y 8=x
  arg 0
  pushi 0
  ldi32
  store 0
  arg 0
  pushi 4
  ldi32
  store 1
  ; x0 = clamp(int(rect.xmin), 0, w)
  arg 1
  pushi 0
  ldf32
  f2i
  pushi 0
  load 0
  call clampi
  store 2
  ; y0 = clamp(int(rect.ymin), 0, h)
  arg 1
  pushi 4
  ldf32
  f2i
  pushi 0
  load 1
  call clampi
  store 3
  ; w2 = clamp(int(rect.xmax), x0, w) - x0
  arg 1
  pushi 8
  ldf32
  f2i
  load 2
  load 0
  call clampi
  load 2
  subi
  store 4
  ; h2 = clamp(int(rect.ymax), y0, h) - y0
  arg 1
  pushi 12
  ldf32
  f2i
  load 3
  load 1
  call clampi
  load 3
  subi
  store 5
  ; out = bnew(8 + w2*h2), write header
  load 4
  load 5
  muli
  pushi 8
  addi
  bnew
  store 6
  load 6
  pushi 0
  load 4
  sti32
  pop
  load 6
  pushi 4
  load 5
  sti32
  pop
  pushi 0
  store 7
yloop:
  load 7
  load 5
  ge
  jnz done
  pushi 0
  store 8
xloop:
  load 8
  load 4
  ge
  jnz ynext
  ; out[8 + y*w2 + x] = src[8 + (y+y0)*w + (x+x0)]
  load 6
  load 7
  load 4
  muli
  load 8
  addi
  pushi 8
  addi
  arg 0
  load 7
  load 3
  addi
  load 0
  muli
  load 8
  load 2
  addi
  addi
  pushi 8
  addi
  ldu8
  stu8
  pop
  load 8
  pushi 1
  addi
  store 8
  jmp xloop
ynext:
  load 7
  pushi 1
  addi
  store 7
  jmp yloop
done:
  load 6
  ret
end`

const incrResSrc = `
program IncrRes version 1.0
func eval args=2 locals=8
  ; args: 0=raster payload, 1=scale factor k (int)
  ; locals: 0=w 1=h 2=k 3=nw 4=nh 5=out 6=y 7=x
  arg 0
  pushi 0
  ldi32
  store 0
  arg 0
  pushi 4
  ldi32
  store 1
  arg 1
  store 2
  load 2
  pushi 1
  lt
  jz kok
  pushi 1
  store 2
kok:
  load 0
  load 2
  muli
  store 3
  load 1
  load 2
  muli
  store 4
  load 3
  load 4
  muli
  pushi 8
  addi
  bnew
  store 5
  load 5
  pushi 0
  load 3
  sti32
  pop
  load 5
  pushi 4
  load 4
  sti32
  pop
  pushi 0
  store 6
yloop:
  load 6
  load 4
  ge
  jnz done
  pushi 0
  store 7
xloop:
  load 7
  load 3
  ge
  jnz ynext
  ; out[8 + y*nw + x] = src[8 + (y/k)*w + (x/k)]
  load 5
  load 6
  load 3
  muli
  load 7
  addi
  pushi 8
  addi
  arg 0
  load 6
  load 2
  divi
  load 0
  muli
  load 7
  load 2
  divi
  addi
  pushi 8
  addi
  ldu8
  stu8
  pop
  load 7
  pushi 1
  addi
  store 7
  jmp xloop
ynext:
  load 6
  pushi 1
  addi
  store 6
  jmp yloop
done:
  load 5
  ret
end`

const rotate90Src = `
program Rotate90 version 1.0
func eval args=1 locals=5
  ; locals: 0=w 1=h 2=out 3=y 4=x
  arg 0
  pushi 0
  ldi32
  store 0
  arg 0
  pushi 4
  ldi32
  store 1
  load 0
  load 1
  muli
  pushi 8
  addi
  bnew
  store 2
  ; rotated raster is h wide, w tall
  load 2
  pushi 0
  load 1
  sti32
  pop
  load 2
  pushi 4
  load 0
  sti32
  pop
  pushi 0
  store 3
yloop:
  load 3
  load 1
  ge
  jnz done
  pushi 0
  store 4
xloop:
  load 4
  load 0
  ge
  jnz ynext
  ; out[8 + x*h + (h-1-y)] = src[8 + y*w + x]
  load 2
  load 4
  load 1
  muli
  load 1
  pushi 1
  subi
  load 3
  subi
  addi
  pushi 8
  addi
  arg 0
  load 3
  load 0
  muli
  load 4
  addi
  pushi 8
  addi
  ldu8
  stu8
  pop
  load 4
  pushi 1
  addi
  store 4
  jmp xloop
ynext:
  load 3
  pushi 1
  addi
  store 3
  jmp yloop
done:
  load 2
  ret
end`

func rasterArg(args []types.Object, i int, op string) (types.Raster, error) {
	r, ok := args[i].(types.Raster)
	if !ok {
		return types.Raster{}, fmt.Errorf("ops: %s: argument %d is %v, want RASTER", op, i, args[i].Kind())
	}
	return r, nil
}

func nativeAvgEnergy(args []types.Object) (types.Object, error) {
	r, err := rasterArg(args, 0, "AvgEnergy")
	if err != nil {
		return nil, err
	}
	return types.Double(r.AvgEnergy()), nil
}

func nativeClip(args []types.Object) (types.Object, error) {
	r, err := rasterArg(args, 0, "Clip")
	if err != nil {
		return nil, err
	}
	win, ok := args[1].(types.Rectangle)
	if !ok {
		return nil, fmt.Errorf("ops: Clip: argument 1 is %v, want RECTANGLE", args[1].Kind())
	}
	// Clamp corners exactly as the shipped MVM implementation does, so
	// native and VM execution produce identical rasters.
	clamp := func(v, lo, hi int) int {
		if v < lo {
			return lo
		}
		if v > hi {
			return hi
		}
		return v
	}
	w, h := r.Width(), r.Height()
	x0 := clamp(int(win.XMin), 0, w)
	y0 := clamp(int(win.YMin), 0, h)
	x1 := clamp(int(win.XMax), x0, w)
	y1 := clamp(int(win.YMax), y0, h)
	return r.Clip(x0, y0, x1-x0, y1-y0), nil
}

func nativeIncrRes(args []types.Object) (types.Object, error) {
	r, err := rasterArg(args, 0, "IncrRes")
	if err != nil {
		return nil, err
	}
	k, ok := args[1].(types.Int)
	if !ok {
		return nil, fmt.Errorf("ops: IncrRes: argument 1 is %v, want INT", args[1].Kind())
	}
	n := int(k)
	if n < 1 {
		n = 1
	}
	// Pixel replication, matching the shipped MVM implementation so that
	// native and VM execution are interchangeable.
	w, h := r.Width(), r.Height()
	nw, nh := w*n, h*n
	out := make([]byte, nw*nh)
	for y := 0; y < nh; y++ {
		for x := 0; x < nw; x++ {
			out[y*nw+x] = r.At(x/n, y/n)
		}
	}
	return types.NewRaster(nw, nh, out), nil
}

func nativeRotate90(args []types.Object) (types.Object, error) {
	r, err := rasterArg(args, 0, "Rotate90")
	if err != nil {
		return nil, err
	}
	return r.Rotate90(), nil
}

func rasterDefs() []*Def {
	return []*Def{
		{
			Name: "AvgEnergy", URI: "mocha://ops/AvgEnergy#1.0",
			Args: []types.Kind{types.KindRaster}, Ret: types.KindDouble,
			ResultBytes: 8, CPUCostPerByte: 1.0,
			Native: nativeAvgEnergy, Source: avgEnergySrc,
		},
		{
			Name: "Clip", URI: "mocha://ops/Clip#1.0",
			Args: []types.Kind{types.KindRaster, types.KindRectangle}, Ret: types.KindRaster,
			ResultRatio: 0.2, CPUCostPerByte: 1.0,
			Native: nativeClip, Source: clipSrc,
		},
		{
			Name: "IncrRes", URI: "mocha://ops/IncrRes#1.0",
			Args: []types.Kind{types.KindRaster, types.KindInt}, Ret: types.KindRaster,
			ResultRatio: 4.0, CPUCostPerByte: 4.0,
			Native: nativeIncrRes, Source: incrResSrc,
		},
		{
			Name: "Rotate90", URI: "mocha://ops/Rotate90#1.0",
			Args: []types.Kind{types.KindRaster}, Ret: types.KindRaster,
			ResultRatio: 1.0, CPUCostPerByte: 1.5,
			Native: nativeRotate90, Source: rotate90Src,
		},
	}
}
