package ops

import (
	"fmt"

	"mocha/internal/types"
)

// Additional spatial operators: Centroid and BoundingBox over polygons,
// NumEdges over drainage networks. Like the rest of the library, each is
// implemented natively and in shippable MVM assembly.

const centroidSrc = `
program Centroid version 1.0
const zero float 0
func eval args=1 locals=5
  ; vertex-average centroid; locals: 0=n 1=i 2=sumx 3=sumy 4=out
  arg 0
  pushi 0
  ldi32
  store 0
  const zero
  store 2
  const zero
  store 3
  pushi 0
  store 1
loop:
  load 1
  load 0
  ge
  jnz done
  load 2
  arg 0
  pushi 4
  load 1
  pushi 8
  muli
  addi
  ldf32
  addf
  store 2
  load 3
  arg 0
  pushi 8
  load 1
  pushi 8
  muli
  addi
  ldf32
  addf
  store 3
  load 1
  pushi 1
  addi
  store 1
  jmp loop
done:
  pushi 8
  bnew
  store 4
  load 0
  pushi 0
  eq
  jnz empty
  load 4
  pushi 0
  load 2
  load 0
  i2f
  divf
  stf32
  pop
  load 4
  pushi 4
  load 3
  load 0
  i2f
  divf
  stf32
  pop
empty:
  load 4
  ret
end`

const boundingBoxSrc = `
program BoundingBox version 1.0
func eval args=1 locals=7
  ; locals: 0=n 1=i 2=minx 3=miny 4=maxx 5=maxy 6=out
  arg 0
  pushi 0
  ldi32
  store 0
  load 0
  pushi 0
  eq
  jnz empty
  ; seed with vertex 0
  arg 0
  pushi 4
  ldf32
  store 2
  arg 0
  pushi 8
  ldf32
  store 3
  load 2
  store 4
  load 3
  store 5
  pushi 1
  store 1
loop:
  load 1
  load 0
  ge
  jnz done
  ; x = v[i].x
  arg 0
  pushi 4
  load 1
  pushi 8
  muli
  addi
  ldf32
  dup
  load 2
  lt
  jz notminx
  dup
  store 2
notminx:
  dup
  load 4
  gt
  jz notmaxx
  dup
  store 4
notmaxx:
  pop
  ; y = v[i].y
  arg 0
  pushi 8
  load 1
  pushi 8
  muli
  addi
  ldf32
  dup
  load 3
  lt
  jz notminy
  dup
  store 3
notminy:
  dup
  load 5
  gt
  jz notmaxy
  dup
  store 5
notmaxy:
  pop
  load 1
  pushi 1
  addi
  store 1
  jmp loop
done:
  pushi 16
  bnew
  store 6
  load 6
  pushi 0
  load 2
  stf32
  pop
  load 6
  pushi 4
  load 3
  stf32
  pop
  load 6
  pushi 8
  load 4
  stf32
  pop
  load 6
  pushi 12
  load 5
  stf32
  pop
  load 6
  ret
empty:
  pushi 16
  bnew
  ret
end`

const numEdgesSrc = `
program NumEdges version 1.0
func eval args=1 locals=0
  ; edge count sits after the vertex array: offset 4 + 8*nv
  arg 0
  arg 0
  pushi 0
  ldi32
  pushi 8
  muli
  pushi 4
  addi
  ldi32
  ret
end`

func nativeCentroid(args []types.Object) (types.Object, error) {
	p, err := polygonArg(args, 0, "Centroid")
	if err != nil {
		return nil, err
	}
	n := p.NumVertices()
	if n == 0 {
		return types.Point{}, nil
	}
	var sx, sy float64
	for i := 0; i < n; i++ {
		v := p.Vertex(i)
		sx += float64(v.X)
		sy += float64(v.Y)
	}
	return types.Point{X: float32(sx / float64(n)), Y: float32(sy / float64(n))}, nil
}

func nativeBoundingBox(args []types.Object) (types.Object, error) {
	p, err := polygonArg(args, 0, "BoundingBox")
	if err != nil {
		return nil, err
	}
	return p.BoundingBox(), nil
}

func nativeNumEdges(args []types.Object) (types.Object, error) {
	g, ok := args[0].(types.Graph)
	if !ok {
		return nil, fmt.Errorf("ops: NumEdges: argument is %v, want GRAPH", args[0].Kind())
	}
	return types.Int(int32(g.NumEdges())), nil
}

func geom2Defs() []*Def {
	return []*Def{
		{
			Name: "Centroid", URI: "mocha://ops/Centroid#1.0",
			Args: []types.Kind{types.KindPolygon}, Ret: types.KindPoint,
			ResultBytes: 8, CPUCostPerByte: 0.3,
			Native: nativeCentroid, Source: centroidSrc,
		},
		{
			Name: "BoundingBox", URI: "mocha://ops/BoundingBox#1.0",
			Args: []types.Kind{types.KindPolygon}, Ret: types.KindRectangle,
			ResultBytes: 16, CPUCostPerByte: 0.3,
			Native: nativeBoundingBox, Source: boundingBoxSrc,
		},
		{
			Name: "NumEdges", URI: "mocha://ops/NumEdges#1.0",
			Args: []types.Kind{types.KindGraph}, Ret: types.KindInt,
			ResultBytes: 4, CPUCostPerByte: 0.01,
			Native: nativeNumEdges, Source: numEdgesSrc,
		},
	}
}
