package bench

// Machine-readable experiment output. Each experiment can emit a Report
// alongside its human-oriented tables; WriteJSON persists it as
// BENCH_<experiment>.json so plotting scripts and regression tests can
// consume the same numbers the tables print.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// MeasurementJSON is the serialized form of one measured execution.
type MeasurementJSON struct {
	Label    string `json:"label"`
	Query    string `json:"query"`
	Strategy string `json:"strategy"`
	Rows     int    `json:"rows"`

	TotalMS  float64 `json:"total_ms"`
	PlanMS   float64 `json:"plan_ms"`
	DeployMS float64 `json:"deploy_ms"`
	DBMS     float64 `json:"db_ms"`
	CPUMS    float64 `json:"cpu_ms"`
	NetMS    float64 `json:"net_ms"`
	JoinMS   float64 `json:"join_ms"`
	MiscMS   float64 `json:"misc_ms"`

	CVDA        int64   `json:"cvda"`
	CVDT        int64   `json:"cvdt"`
	CVRF        float64 `json:"cvrf"`
	ResultBytes int64   `json:"result_bytes"`

	CodeClassesShipped int64 `json:"code_classes_shipped"`
	CodeBytesShipped   int64 `json:"code_bytes_shipped"`
	CacheHits          int64 `json:"cache_hits"`
}

// LoadStatsJSON summarizes a loadgen run: the heavy-traffic experiment
// of the stress suite (mocha-loadgen). Latencies are exact percentiles
// over every successful query; memory numbers come from the QPC's
// governor at the end of the run.
type LoadStatsJSON struct {
	Clients          int     `json:"clients"`
	Tenants          int     `json:"tenants"`
	QueriesTotal     int64   `json:"queries_total"`
	QueriesFailed    int64   `json:"queries_failed"`
	Rejected         int64   `json:"rejected"`
	IncorrectResults int64   `json:"incorrect_results"`
	ElapsedMS        float64 `json:"elapsed_ms"`
	ThroughputQPS    float64 `json:"throughput_qps"`
	P50MS            float64 `json:"p50_ms"`
	P95MS            float64 `json:"p95_ms"`
	P99MS            float64 `json:"p99_ms"`
	MaxMS            float64 `json:"max_ms"`
	SpillEvents      int64   `json:"spill_events"`
	SpillBytes       int64   `json:"spill_bytes"`
	MemBudgetBytes   int64   `json:"mem_budget_bytes"`
	MemHighWater     int64   `json:"mem_high_water_bytes"`
}

// Report is the machine-readable result of one experiment run.
type Report struct {
	Experiment   string            `json:"experiment"`
	Scale        float64           `json:"scale"`
	BandwidthBPS float64           `json:"bandwidth_bps,omitempty"`
	Measurements []MeasurementJSON `json:"measurements"`
	// Load carries a loadgen run's aggregate statistics (nil for the
	// paper-figure experiments).
	Load *LoadStatsJSON `json:"load,omitempty"`
}

func toJSONMeasurement(m Measurement) MeasurementJSON {
	s := m.Stats
	return MeasurementJSON{
		Label:    m.Label,
		Query:    oneLine(m.Query),
		Strategy: m.Strategy,
		Rows:     m.Rows,
		TotalMS:  s.TotalMS,
		PlanMS:   s.PlanMS,
		DeployMS: s.DeployMS,
		DBMS:     s.DBMS,
		CPUMS:    s.CPUMS,
		NetMS:    s.NetMS,
		JoinMS:   s.JoinMS,
		MiscMS:   s.MiscMS,

		CVDA:        s.CVDA,
		CVDT:        s.CVDT,
		CVRF:        s.CVRF(),
		ResultBytes: s.ResultBytes,

		CodeClassesShipped: int64(s.CodeClassesShipped),
		CodeBytesShipped:   int64(s.CodeBytesShipped),
		CacheHits:          int64(s.CacheHits),
	}
}

// RunExperimentReport runs an experiment and returns its tables plus a
// Report of every measurement the experiment took through the harness.
func (e *Env) RunExperimentReport(id string) ([]Table, *Report, error) {
	e.record = nil
	tables, err := e.RunExperiment(id)
	if err != nil {
		return nil, nil, err
	}
	rep := &Report{Experiment: id, Scale: e.opts.Scale}
	if e.Shaper != nil {
		rep.BandwidthBPS = e.Shaper.BitsPerSec
	}
	for _, m := range e.record {
		rep.Measurements = append(rep.Measurements, toJSONMeasurement(m))
	}
	return tables, rep, nil
}

// WriteJSON persists the report as BENCH_<experiment>.json under dir
// (dir == "" means the working directory) and returns the path written.
func (r *Report) WriteJSON(dir string) (string, error) {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return "", err
	}
	path := filepath.Join(dir, fmt.Sprintf("BENCH_%s.json", r.Experiment))
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// ReadReport parses a BENCH_*.json file back into a Report.
func ReadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("bench: %s: %w", path, err)
	}
	return &rep, nil
}
