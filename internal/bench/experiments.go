package bench

import (
	"fmt"

	"mocha/internal/sequoia"
	"mocha/pkg/mocha"
)

// Experiment identifiers, one per table/figure of the paper plus the
// ablations called out in DESIGN.md.
const (
	ExpTable1        = "table1"
	ExpTable2        = "table2"
	ExpFig9a         = "fig9a"
	ExpFig9b         = "fig9b"
	ExpFig10a        = "fig10a"
	ExpFig10b        = "fig10b"
	ExpFig11         = "fig11"
	ExpAblationVRF   = "ablation-vrf"
	ExpAblationCache = "ablation-codecache"
	ExpExecOverlap   = "exec-overlap"
	ExpCut           = "cut"
)

// AllExperiments lists every experiment in presentation order.
var AllExperiments = []string{
	ExpTable1, ExpTable2, ExpFig9a, ExpFig9b, ExpFig10a, ExpFig10b,
	ExpFig11, ExpAblationVRF, ExpAblationCache, ExpExecOverlap, ExpCut,
}

// RunExperiment dispatches by identifier.
func (e *Env) RunExperiment(id string) ([]Table, error) {
	switch id {
	case ExpTable1:
		t, err := e.Table1()
		return []Table{t}, err
	case ExpTable2:
		return []Table{e.Table2()}, nil
	case ExpFig9a, ExpFig9b:
		a, b, err := e.Fig9()
		if err != nil {
			return nil, err
		}
		if id == ExpFig9a {
			return []Table{a}, nil
		}
		return []Table{b}, nil
	case ExpFig10a, ExpFig10b:
		a, b, err := e.Fig10(nil)
		if err != nil {
			return nil, err
		}
		if id == ExpFig10a {
			return []Table{a}, nil
		}
		return []Table{b}, nil
	case ExpFig11:
		t, err := e.Fig11()
		return []Table{t}, err
	case ExpAblationVRF:
		t, err := e.AblationVRF()
		return []Table{t}, err
	case ExpAblationCache:
		t, err := e.AblationCodeCache()
		return []Table{t}, err
	case ExpExecOverlap:
		t, err := e.ExecOverlap()
		return []Table{t}, err
	case ExpCut:
		t, err := e.CutComparison()
		return []Table{t}, err
	}
	return nil, fmt.Errorf("bench: unknown experiment %q", id)
}

// Table1 reports the generated datasets, mirroring the paper's Table 1.
func (e *Env) Table1() (Table, error) {
	t := Table{
		Title:  "Table 1: datasets",
		Note:   fmt.Sprintf("generated at scale (paper sizes: Polygons 77,643/18.8MB, Graphs 201,650/31MB, Rasters 200/200MB)"),
		Header: []string{"table", "rows", "bytes", "avg row"},
	}
	for _, name := range []string{"Polygons", "Graphs", "Rasters", "Rasters1", "Rasters2"} {
		tbl, ok := e.Cluster.Catalog().Table(name)
		if !ok {
			return t, fmt.Errorf("bench: table %s not registered", name)
		}
		total := tbl.Stats.RowCount * int64(tbl.Stats.AvgTupleBytes())
		t.Rows = append(t.Rows, []string{
			name,
			fmt.Sprintf("%d", tbl.Stats.RowCount),
			fmt.Sprintf("%d", total),
			fmt.Sprintf("%d", tbl.Stats.AvgTupleBytes()),
		})
	}
	return t, nil
}

// Table2 lists the benchmark queries.
func (e *Env) Table2() Table {
	t := Table{
		Title:  "Table 2: benchmark queries",
		Header: []string{"id", "sql"},
	}
	t.Rows = append(t.Rows, []string{"Q1", oneLine(sequoia.Q1)})
	t.Rows = append(t.Rows, []string{"Q2", oneLine(sequoia.Q2(e.Cfg))})
	t.Rows = append(t.Rows, []string{"Q3", oneLine(sequoia.Q3)})
	t.Rows = append(t.Rows, []string{"Q4", oneLine(sequoia.Q4(0, 0)) + "   (constants set per selectivity)"})
	t.Rows = append(t.Rows, []string{"Q5", oneLine(sequoia.Q5)})
	return t
}

// Fig9 runs Q1 (aggregates), Q2 (reducing projection) and Q3 (inflating
// projection) under both strategies, producing the execution-time
// breakdown of Figure 9(a) and the volume comparison of Figure 9(b).
func (e *Env) Fig9() (Table, Table, error) {
	a := Table{
		Title:  "Figure 9(a): execution time, single data source",
		Note:   "paper shape: DAP wins Q1 ~4:1 and Q2 ~3:1; QPC wins Q3 (inflating op)",
		Header: []string{"query", "strategy", "total ms", "db ms", "cpu ms", "net ms", "misc ms", "rows"},
	}
	b := Table{
		Title:  "Figure 9(b): data volumes, single data source",
		Note:   "paper shape: lowest-CVRF plan is the fastest plan in every case",
		Header: []string{"query", "strategy", "CVDA", "CVDT", "result bytes", "CVRF"},
	}
	queries := []struct {
		label string
		sql   string
	}{
		{"Q1", sequoia.Q1},
		{"Q2", sequoia.Q2(e.Cfg)},
		{"Q3", sequoia.Q3},
	}
	for _, q := range queries {
		for _, strat := range []mocha.Strategy{mocha.StrategyCodeShip, mocha.StrategyDataShip} {
			m, err := e.runLabeled(q.label, q.sql, strat)
			if err != nil {
				return a, b, fmt.Errorf("%s: %w", q.label, err)
			}
			a.Rows = append(a.Rows, breakdownRow(q.label, m))
			b.Rows = append(b.Rows, volumeRow(q.label, m))
		}
	}
	return a, b, nil
}

// DefaultQ4Selectivities is the x-axis of Figure 10.
var DefaultQ4Selectivities = []float64{0.1, 0.25, 0.5, 0.75, 1.0}

// Fig10 runs Q4 across predicate selectivities under both strategies.
func (e *Env) Fig10(sels []float64) (Table, Table, error) {
	if sels == nil {
		sels = DefaultQ4Selectivities
	}
	a := Table{
		Title:  "Figure 10(a): Q4 execution time vs selectivity",
		Note:   "paper shape: DAP wins at every selectivity (2-3:1)",
		Header: []string{"selectivity", "strategy", "total ms", "db ms", "cpu ms", "net ms", "misc ms", "rows"},
	}
	b := Table{
		Title:  "Figure 10(b): Q4 transmitted volume vs selectivity",
		Note:   "paper shape: volume under code shipping ≪ selectivity × table bytes",
		Header: []string{"selectivity", "strategy", "CVDA", "CVDT", "result bytes", "CVRF"},
	}
	store := e.siteStore("site1")
	cals, err := sequoia.CalibrateQ4(store, sels)
	if err != nil {
		return a, b, err
	}
	for _, cal := range cals {
		e.Cluster.SetSelectivity("NumVertices", "Graphs", cal.VertSelectivity)
		e.Cluster.SetSelectivity("TotalLength", "Graphs", cal.LenSelectivity)
		sql := sequoia.Q4(cal.MaxVerts, cal.MaxLength)
		label := fmt.Sprintf("%.0f%% (actual %.0f%%)", cal.Target*100, cal.Actual*100)
		for _, strat := range []mocha.Strategy{mocha.StrategyCodeShip, mocha.StrategyDataShip} {
			m, err := e.runLabeled(label, sql, strat)
			if err != nil {
				return a, b, err
			}
			a.Rows = append(a.Rows, breakdownRow(label, m))
			b.Rows = append(b.Rows, volumeRow(label, m))
		}
	}
	return a, b, nil
}

// Fig11 runs the distributed join Q5 under both strategies, including
// the join-time component of the paper's Figure 11.
func (e *Env) Fig11() (Table, error) {
	t := Table{
		Title:  "Figure 11: Q5 distributed join",
		Note:   "paper shape: semi-join + code shipping wins ~2.5:1; CVRF 1 vs ~0.0001",
		Header: []string{"strategy", "total ms", "db ms", "cpu ms", "net ms", "join ms", "misc ms", "CVDA", "CVDT", "CVRF", "rows"},
	}
	for _, strat := range []mocha.Strategy{mocha.StrategyCodeShip, mocha.StrategyDataShip} {
		m, err := e.runLabeled("Q5", sequoia.Q5, strat)
		if err != nil {
			return t, err
		}
		s := m.Stats
		t.Rows = append(t.Rows, []string{
			m.Strategy, ms(s.TotalMS), ms(s.DBMS), ms(s.CPUMS), ms(s.NetMS),
			ms(s.JoinMS), ms(s.MiscMS), bytesOf(s.CVDA), bytesOf(s.CVDT),
			ratio(s.CVRF()), fmt.Sprintf("%d", m.Rows),
		})
	}
	return t, nil
}

// AblationVRF compares the VRF-based transmitted-volume estimate with
// the selectivity-and-cardinality-only estimate against the measured
// volume — the accuracy claim of section 5.3.
func (e *Env) AblationVRF() (Table, error) {
	t := Table{
		Title:  "Ablation: VRF vs selectivity-only volume estimation",
		Note:   "estimates come from the optimizer; 'measured' is the wire truth",
		Header: []string{"query", "measured CVDT", "VRF estimate", "sel-only estimate", "VRF err", "sel-only err"},
	}
	store := e.siteStore("site1")
	cals, err := sequoia.CalibrateQ4(store, []float64{0.5})
	if err != nil {
		return t, err
	}
	cal := cals[0]
	e.Cluster.SetSelectivity("NumVertices", "Graphs", cal.VertSelectivity)
	e.Cluster.SetSelectivity("TotalLength", "Graphs", cal.LenSelectivity)
	cases := []struct {
		label string
		sql   string
	}{
		{"Q2", sequoia.Q2(e.Cfg)},
		{"Q4@50%", sequoia.Q4(cal.MaxVerts, cal.MaxLength)},
	}
	for _, c := range cases {
		e.Cluster.SetStrategy(mocha.StrategyCodeShip)
		res, err := e.Cluster.Execute(c.sql)
		if err != nil {
			return t, err
		}
		measured := float64(res.Stats.CVDT)
		est := float64(res.Plan.Est.CVDT)
		selOnly := float64(res.Plan.Est.CVDTSelOnly)
		relErr := func(x float64) string {
			if measured == 0 {
				return "n/a"
			}
			return fmt.Sprintf("%+.0f%%", (x-measured)/measured*100)
		}
		t.Rows = append(t.Rows, []string{
			c.label,
			fmt.Sprintf("%.0f", measured),
			fmt.Sprintf("%.0f", est),
			fmt.Sprintf("%.0f", selOnly),
			relErr(est), relErr(selOnly),
		})
	}
	return t, nil
}

// ExecOverlap measures what the pipelined executor buys on the Q6
// triple-site join: with Serial tuning the QPC drains one remote stream
// at a time and builds hash tables sequentially (the pre-operator-tree
// behaviour); with default tuning both hash builds run concurrently
// while bounded prefetchers keep every fragment stream moving, so the
// three sites' transfer times overlap instead of adding up.
func (e *Env) ExecOverlap() (Table, error) {
	t := Table{
		Title:  "Ablation: executor overlap (concurrent builds + stream prefetch)",
		Note:   "Q6 triple-site join under data shipping; best of 3 after warmup",
		Header: []string{"executor", "strategy", "total ms", "db ms", "cpu ms", "net ms", "join ms", "rows"},
	}
	modes := []struct {
		label  string
		tuning mocha.Tuning
	}{
		{"serial", mocha.Tuning{Serial: true}},
		{"overlapped", mocha.Tuning{}},
	}
	var totals [2]float64
	for i, mode := range modes {
		opts := e.opts
		opts.Exec = mode.tuning
		env2, err := NewEnv(opts)
		if err != nil {
			return t, err
		}
		// Warm up caches and the code path, then keep the best of three:
		// overlap is a wall-clock claim, so scheduler noise must not pick
		// the winner.
		if _, err := env2.Run(sequoia.Q6, mocha.StrategyDataShip); err != nil {
			env2.Close()
			return t, err
		}
		var best Measurement
		for run := 0; run < 3; run++ {
			m, err := env2.Run(sequoia.Q6, mocha.StrategyDataShip)
			if err != nil {
				env2.Close()
				return t, err
			}
			if run == 0 || m.Stats.TotalMS < best.Stats.TotalMS {
				best = m
			}
		}
		env2.Close()
		best.Label = mode.label
		e.record = append(e.record, best)
		totals[i] = best.Stats.TotalMS
		s := best.Stats
		t.Rows = append(t.Rows, []string{
			mode.label, best.Strategy, ms(s.TotalMS), ms(s.DBMS), ms(s.CPUMS),
			ms(s.NetMS), ms(s.JoinMS), fmt.Sprintf("%d", best.Rows),
		})
	}
	if totals[1] > 0 {
		t.Rows = append(t.Rows, []string{
			"speedup", "", fmt.Sprintf("%.2fx", totals[0]/totals[1]),
			"", "", "", "", "",
		})
	}
	return t, nil
}

// CutComparison runs the composed-operator workload under the ranked
// whole-plan DAG-cut planner and the legacy greedy per-operator policy.
// Both plan the same queries under the automatic strategy; the ranked
// search enumerates whole-DAG cuts (including mid-expression splits of
// composed calls like Q5's Diff over two AvgEnergy legs) and must never
// transfer more bytes than the per-operator baseline.
func (e *Env) CutComparison() (Table, error) {
	t := Table{
		Title:  "Experiment: whole-plan DAG cut vs per-operator placement",
		Note:   "composed-operator workload, automatic strategy; dag-cut CVDT must never exceed per-op",
		Header: []string{"query", "search", "total ms", "net ms", "CVDA", "CVDT", "CVRF", "rows"},
	}
	queries := []struct{ label, sql string }{
		{"Q5", sequoia.Q5},
		{"Q6", sequoia.Q6},
		{"composed_proj", `SELECT time, Diff(AvgEnergy(image), 0.0) FROM Rasters`},
		{"composed_pred", `SELECT name FROM Graphs
WHERE NumVertices(graph) + TotalLength(graph) < 100000`},
	}
	modes := []struct {
		label  string
		search mocha.CutSearch
	}{
		{"dag-cut", mocha.CutSearchRanked},
		{"per-op", mocha.CutSearchGreedy},
	}
	cvdt := map[string]map[string]int64{}
	for _, mode := range modes {
		opts := e.opts
		opts.PlacementSearch = mode.search
		env2, err := NewEnv(opts)
		if err != nil {
			return t, err
		}
		for _, q := range queries {
			m, err := env2.Run(q.sql, mocha.StrategyAuto)
			if err != nil {
				env2.Close()
				return t, fmt.Errorf("%s under %s: %w", q.label, mode.label, err)
			}
			m.Label = q.label + "/" + mode.label
			e.record = append(e.record, m)
			if cvdt[q.label] == nil {
				cvdt[q.label] = map[string]int64{}
			}
			cvdt[q.label][mode.label] = m.Stats.CVDT
			s := m.Stats
			t.Rows = append(t.Rows, []string{
				q.label, mode.label, ms(s.TotalMS), ms(s.NetMS),
				bytesOf(s.CVDA), bytesOf(s.CVDT), ratio(s.CVRF()),
				fmt.Sprintf("%d", m.Rows),
			})
		}
		env2.Close()
	}
	for _, q := range queries {
		if cvdt[q.label]["dag-cut"] > cvdt[q.label]["per-op"] {
			return t, fmt.Errorf("bench: %s: dag-cut CVDT %d exceeds per-op %d",
				q.label, cvdt[q.label]["dag-cut"], cvdt[q.label]["per-op"])
		}
	}
	return t, nil
}

// AblationCodeCache measures repeated-query deployment cost with the DAP
// code cache on (the section 3.6 caching extension) and off.
func (e *Env) AblationCodeCache() (Table, error) {
	t := Table{
		Title:  "Ablation: DAP code cache",
		Note:   "same query three times; classes shipped per run",
		Header: []string{"cache", "run", "classes shipped", "code bytes", "deploy ms"},
	}
	sql := "SELECT time, AvgEnergy(image) FROM Rasters WHERE AvgEnergy(image) < 200"
	for _, disabled := range []bool{false, true} {
		env2, err := NewEnvLike(e, disabled)
		if err != nil {
			return t, err
		}
		label := "on"
		if disabled {
			label = "off"
		}
		for run := 1; run <= 3; run++ {
			m, err := env2.Run(sql, mocha.StrategyCodeShip)
			if err != nil {
				env2.Close()
				return t, err
			}
			t.Rows = append(t.Rows, []string{
				label, fmt.Sprintf("%d", run),
				fmt.Sprintf("%d", m.Stats.CodeClassesShipped),
				fmt.Sprintf("%d", m.Stats.CodeBytesShipped),
				ms(m.Stats.DeployMS),
			})
		}
		env2.Close()
	}
	return t, nil
}
