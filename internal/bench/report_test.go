package bench

import (
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// find returns the measurement for one (label, strategy) cell of a
// report, failing the test if the experiment did not record it. The
// strategy is matched as a substring of the display string the tables
// use ("DAP (code ship)", "QPC (data ship)").
func find(t *testing.T, rep *Report, label, strat string) MeasurementJSON {
	t.Helper()
	for _, m := range rep.Measurements {
		if m.Label == label && strings.Contains(m.Strategy, strat) {
			return m
		}
	}
	t.Fatalf("report has no measurement for %s under %q; got %+v", label, strat, rep.Measurements)
	return MeasurementJSON{}
}

// TestFig9aReportShape runs the figure 9(a) experiment end to end and
// checks the machine-readable report reproduces the paper's shape:
// code shipping moves less data than data shipping on the reducing
// queries Q1 and Q2, and more on the inflating query Q3.
func TestFig9aReportShape(t *testing.T) {
	env := testEnv(t)
	_, rep, err := env.RunExperimentReport(ExpFig9a)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Experiment != ExpFig9a {
		t.Errorf("experiment label %q", rep.Experiment)
	}
	if len(rep.Measurements) != 6 {
		t.Fatalf("fig9a recorded %d measurements, want 3 queries x 2 strategies", len(rep.Measurements))
	}

	for _, label := range []string{"Q1", "Q2", "Q3"} {
		code := find(t, rep, label, "code ship")
		data := find(t, rep, label, "data ship")
		if code.Rows != data.Rows {
			t.Errorf("%s: code ship returned %d rows, data ship %d", label, code.Rows, data.Rows)
		}
		if code.Rows == 0 {
			t.Errorf("%s: empty result set", label)
		}
		// CVRF in the report must be consistent with its own volumes.
		for _, m := range []MeasurementJSON{code, data} {
			if m.CVDA <= 0 {
				t.Errorf("%s/%s: CVDA %d", label, m.Strategy, m.CVDA)
				continue
			}
			want := float64(m.CVDT) / float64(m.CVDA)
			if diff := m.CVRF - want; diff > 1e-9 || diff < -1e-9 {
				t.Errorf("%s/%s: CVRF %g inconsistent with CVDT/CVDA %g", label, m.Strategy, m.CVRF, want)
			}
		}
		switch label {
		case "Q1", "Q2":
			// Filtering at the source wins: the paper's 4:1 / 3:1 cases.
			if code.CVDT >= data.CVDT {
				t.Errorf("%s: code shipping moved %d bytes, data shipping %d — expected code < data",
					label, code.CVDT, data.CVDT)
			}
		case "Q3":
			// IncrRes inflates, so executing it at the source loses.
			if code.CVDT <= data.CVDT {
				t.Errorf("Q3: code shipping moved %d bytes, data shipping %d — expected code > data",
					code.CVDT, data.CVDT)
			}
		}
	}
}

// TestReportJSONRoundTrip persists a report and reads it back,
// asserting the on-disk form is a faithful, parseable copy — the
// contract plotting scripts rely on.
func TestReportJSONRoundTrip(t *testing.T) {
	env := testEnv(t)
	_, rep, err := env.RunExperimentReport(ExpFig9a)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path, err := rep.WriteJSON(dir)
	if err != nil {
		t.Fatal(err)
	}
	if want := filepath.Join(dir, "BENCH_fig9a.json"); path != want {
		t.Errorf("wrote %s, want %s", path, want)
	}
	got, err := ReadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, rep) {
		t.Errorf("round-trip changed the report:\nwrote %+v\nread  %+v", rep, got)
	}
}

// TestRunExperimentReportResetsRecord guards against measurements from
// one experiment leaking into the next report off the shared recorder.
func TestRunExperimentReportResetsRecord(t *testing.T) {
	env := testEnv(t)
	if _, _, err := env.RunExperimentReport(ExpFig9a); err != nil {
		t.Fatal(err)
	}
	_, rep, err := env.RunExperimentReport(ExpFig11)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range rep.Measurements {
		if m.Label != "Q5" {
			t.Errorf("fig11 report contains stray measurement %q", m.Label)
		}
	}
}
