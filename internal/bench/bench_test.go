package bench

import (
	"fmt"
	"strings"
	"testing"

	"mocha/pkg/mocha"
)

func testEnv(t *testing.T) *Env {
	t.Helper()
	env, err := NewEnv(Options{Scale: 0.01, Unshaped: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(env.Close)
	return env
}

func TestEveryExperimentRuns(t *testing.T) {
	env := testEnv(t)
	for _, id := range AllExperiments {
		tables, err := env.RunExperiment(id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(tables) == 0 {
			t.Fatalf("%s produced no tables", id)
		}
		for _, tbl := range tables {
			out := tbl.String()
			if !strings.Contains(out, "===") || len(tbl.Rows) == 0 {
				t.Errorf("%s: empty or unformatted output:\n%s", id, out)
			}
		}
	}
	if _, err := env.RunExperiment("nope"); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestFig9VolumesShape(t *testing.T) {
	env := testEnv(t)
	_, vol, err := env.Fig9()
	if err != nil {
		t.Fatal(err)
	}
	// Rows alternate code/data shipping per query; the code-shipping
	// CVRF must be < 1 for Q1 and Q2 and > 1 for Q3.
	cvrf := func(row []string) string { return row[len(row)-1] }
	if !strings.HasPrefix(cvrf(vol.Rows[0]), "0.0") { // Q1 code ship
		t.Errorf("Q1 code-ship CVRF = %s", cvrf(vol.Rows[0]))
	}
	if cvrf(vol.Rows[1]) != "1.000000" { // Q1 data ship
		t.Errorf("Q1 data-ship CVRF = %s", cvrf(vol.Rows[1]))
	}
	if !strings.HasPrefix(cvrf(vol.Rows[4]), "3.9") && !strings.HasPrefix(cvrf(vol.Rows[4]), "4.0") { // Q3 code ship
		t.Errorf("Q3 code-ship CVRF = %s", cvrf(vol.Rows[4]))
	}
}

// TestPartitionedEnv builds the fleet with Rasters range-sharded
// 3-way and checks a scattered scan matches the standard layout's
// rows while the plan really fans out.
func TestPartitionedEnv(t *testing.T) {
	env, err := NewEnv(Options{Scale: 0.02, Unshaped: true, RasterPartitions: 3})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(env.Close)
	plain, err := NewEnv(Options{Scale: 0.02, Unshaped: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(plain.Close)

	got, err := env.Cluster.Execute("SELECT time, band FROM Rasters ORDER BY time, band")
	if err != nil {
		t.Fatal(err)
	}
	want, err := plain.Cluster.Execute("SELECT time, band FROM Rasters ORDER BY time, band")
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Rows) == 0 || fmt.Sprint(got.Rows) != fmt.Sprint(want.Rows) {
		t.Fatalf("sharded scan diverged from the standard layout (%d vs %d rows)", len(got.Rows), len(want.Rows))
	}
	out, err := env.Cluster.Explain("SELECT time, band FROM Rasters")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "partitions: 3/3") {
		t.Errorf("plan lost the scatter:\n%s", out)
	}
}

func TestRunStrategyLabels(t *testing.T) {
	env := testEnv(t)
	m, err := env.Run("SELECT time FROM Rasters", mocha.StrategyAuto)
	if err != nil {
		t.Fatal(err)
	}
	if m.Strategy != "auto" || m.Rows == 0 {
		t.Errorf("measurement = %+v", m)
	}
}

func TestTableFormatting(t *testing.T) {
	tbl := Table{
		Title:  "demo",
		Note:   "a note",
		Header: []string{"col", "longer header"},
		Rows:   [][]string{{"a-very-long-cell", "x"}},
	}
	out := tbl.String()
	for _, want := range []string{"=== demo ===", "a note", "longer header", "a-very-long-cell"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Header and separator lines align.
	if len(lines) < 5 || len(lines[2]) != len(lines[3]) {
		t.Errorf("misaligned table:\n%s", out)
	}
}
