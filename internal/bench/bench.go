// Package bench is the experiment harness that regenerates every table
// and figure of the paper's evaluation (section 5). It stands up an
// embedded cluster over a bandwidth-shaped network, loads scaled Sequoia
// 2000 data, runs each benchmark query under both placement strategies,
// and prints rows shaped like the paper's: execution-time breakdowns
// (DB/CPU/Net/Misc), data volumes (CVDA/CVDT) and CVRFs.
package bench

import (
	"fmt"
	"strings"

	"mocha/internal/netsim"
	"mocha/internal/sequoia"
	"mocha/internal/storage"
	"mocha/pkg/mocha"
)

// Env is a ready benchmark environment.
type Env struct {
	Cluster *mocha.Cluster
	Cfg     sequoia.Config
	// Shaper is the modeled link (nil = unshaped, for volume-only runs).
	Shaper *netsim.Shaper
	opts   Options
	stores map[string]*storage.Store
	// record accumulates labeled measurements for machine-readable
	// reports (see RunExperimentReport).
	record []Measurement
}

// siteStore returns a site's backing store (nil if unknown).
func (e *Env) siteStore(site string) *storage.Store { return e.stores[site] }

// NewEnvLike builds a fresh environment with the same options as e but
// the DAP code cache toggled.
func NewEnvLike(e *Env, disableCache bool) (*Env, error) {
	opts := e.opts
	opts.DisableDAPCodeCache = disableCache
	return NewEnv(opts)
}

// Options configures an environment.
type Options struct {
	// Scale shrinks the paper datasets (1.0 = Table 1 sizes).
	Scale float64
	// Shaper models the network (default: the paper's 10 Mbps Ethernet).
	Shaper *netsim.Shaper
	// Unshaped disables link shaping entirely (fast volume-focused runs).
	Unshaped bool
	// DisableDAPCodeCache forces per-query code re-shipping.
	DisableDAPCodeCache bool
	// Exec tunes the shared operator-tree executor (batch size, prefetch
	// depth, serial fallback, memory budget) on the QPC and every DAP.
	Exec mocha.Tuning
	// MaxConcurrent bounds concurrently executing queries on the QPC
	// (0 = unbounded).
	MaxConcurrent int
	// QueueDepth bounds queries waiting for an admission slot.
	QueueDepth int
	// RasterPartitions range-partitions Rasters on time into N shards
	// scattered over the three sites with 2-way replication (0 or 1 =
	// the standard single-site table).
	RasterPartitions int
	// PlacementSearch selects the optimizer's cut-search mode: ranked
	// whole-plan DAG cuts (the default) or the legacy greedy
	// per-operator policy (the BENCH_cut baseline).
	PlacementSearch mocha.CutSearch
}

// NewEnv builds the three-site benchmark deployment: site1 holds
// Polygons, Graphs, Rasters and Rasters1; site2 holds Rasters2; site3
// holds Rasters3 (the third leg of the Q6 multi-join).
func NewEnv(opts Options) (*Env, error) {
	if opts.Scale <= 0 {
		opts.Scale = 0.1
	}
	shaper := opts.Shaper
	if shaper == nil && !opts.Unshaped {
		shaper = netsim.Ethernet10Mbps
	}
	cfg := sequoia.Scaled(opts.Scale)
	cluster, err := mocha.NewCluster(mocha.ClusterConfig{
		Shaper:              shaper,
		Search:              opts.PlacementSearch,
		DisableDAPCodeCache: opts.DisableDAPCodeCache,
		Exec:                opts.Exec,
		MaxConcurrent:       opts.MaxConcurrent,
		QueueDepth:          opts.QueueDepth,
	})
	if err != nil {
		return nil, err
	}
	s1, err := mocha.NewStore()
	if err != nil {
		return nil, err
	}
	s2, err := mocha.NewStore()
	if err != nil {
		return nil, err
	}
	s3, err := mocha.NewStore()
	if err != nil {
		return nil, err
	}
	if err := sequoia.GenerateAll(s1, cfg); err != nil {
		return nil, err
	}
	if err := sequoia.GenerateJoinPair(s1, s2, cfg); err != nil {
		return nil, err
	}
	if err := sequoia.GenerateJoinThird(s3, cfg); err != nil {
		return nil, err
	}
	if err := cluster.AddSite("site1", s1); err != nil {
		return nil, err
	}
	if err := cluster.AddSite("site2", s2); err != nil {
		return nil, err
	}
	if err := cluster.AddSite("site3", s3); err != nil {
		return nil, err
	}
	for _, tbl := range []string{"Polygons", "Graphs", "Rasters", "Rasters1"} {
		if tbl == "Rasters" && opts.RasterPartitions > 1 {
			continue
		}
		if err := cluster.RegisterTable("site1", tbl); err != nil {
			return nil, err
		}
	}
	if err := cluster.RegisterTable("site2", "Rasters2"); err != nil {
		return nil, err
	}
	if err := cluster.RegisterTable("site3", "Rasters3"); err != nil {
		return nil, err
	}
	if opts.RasterPartitions > 1 {
		stores := map[string]*storage.Store{"site1": s1, "site2": s2, "site3": s3}
		spec, err := shardRasters(stores, opts.RasterPartitions)
		if err != nil {
			return nil, err
		}
		if err := cluster.RegisterPartitionedTable("Rasters", spec); err != nil {
			return nil, err
		}
	}
	env := &Env{
		Cluster: cluster, Cfg: cfg, Shaper: shaper, opts: opts,
		stores: map[string]*storage.Store{"site1": s1, "site2": s2, "site3": s3},
	}
	return env, nil
}

// shardRasters range-partitions site1's generated Rasters table on time
// into n shards, each replicated on two sites assigned round-robin so
// primaries alternate across the fleet.
func shardRasters(stores map[string]*storage.Store, n int) (*mocha.PartitionSpec, error) {
	sites := []string{"site1", "site2", "site3"}
	src, ok := stores["site1"].Table("Rasters")
	if !ok {
		return nil, fmt.Errorf("bench: missing generated Rasters table")
	}
	ti := src.Schema().ColumnIndex("time")
	if ti < 0 {
		return nil, fmt.Errorf("bench: Rasters has no time column")
	}
	it, err := src.Scan()
	if err != nil {
		return nil, err
	}
	var lo, hi int64
	first := true
	for {
		tup, _, err := it.Next()
		if err != nil {
			return nil, err
		}
		if tup == nil {
			break
		}
		v := int64(tup[ti].(mocha.Int))
		if first || v < lo {
			lo = v
		}
		if first || v > hi {
			hi = v
		}
		first = false
	}
	cuts := make([]int64, 0, n-1)
	for i := 1; i < n; i++ {
		cuts = append(cuts, lo+(hi-lo+1)*int64(i)/int64(n))
	}
	sets := make([][]string, n)
	for i := range sets {
		sets[i] = []string{sites[i%len(sites)], sites[(i+1)%len(sites)]}
	}
	spec := mocha.RangePlacement("Rasters", "time", cuts, sets)
	if err := mocha.SplitTable(src, spec, stores, nil, ""); err != nil {
		return nil, err
	}
	return spec, nil
}

// Close releases the environment.
func (e *Env) Close() { e.Cluster.Close() }

// Measurement is one measured query execution.
type Measurement struct {
	// Label is the figure row name (Q1, Q2, a selectivity bucket, ...).
	Label    string
	Query    string
	Strategy string
	Rows     int
	Stats    mocha.QueryStats
}

// Run executes sql under the given strategy.
func (e *Env) Run(sql string, strategy mocha.Strategy) (Measurement, error) {
	e.Cluster.SetStrategy(strategy)
	res, err := e.Cluster.Execute(sql)
	if err != nil {
		return Measurement{}, fmt.Errorf("bench: %v: %w", strategy, err)
	}
	name := map[mocha.Strategy]string{
		mocha.StrategyAuto:     "auto",
		mocha.StrategyCodeShip: "DAP (code ship)",
		mocha.StrategyDataShip: "QPC (data ship)",
	}[strategy]
	return Measurement{Query: sql, Strategy: name, Rows: len(res.Rows), Stats: res.Stats}, nil
}

// runLabeled executes sql like Run and records the measurement under a
// figure label for the experiment's machine-readable report.
func (e *Env) runLabeled(label, sql string, strategy mocha.Strategy) (Measurement, error) {
	m, err := e.Run(sql, strategy)
	if err != nil {
		return m, err
	}
	m.Label = label
	e.record = append(e.record, m)
	return m, nil
}

// Table is a formatted experiment output.
type Table struct {
	Title  string
	Note   string
	Header []string
	Rows   [][]string
}

// String renders the table with aligned columns.
func (t Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s ===\n", t.Title)
	if t.Note != "" {
		fmt.Fprintf(&b, "%s\n", t.Note)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

func oneLine(sql string) string {
	return strings.Join(strings.Fields(sql), " ")
}

func ms(v float64) string    { return fmt.Sprintf("%.1f", v) }
func bytesOf(v int64) string { return fmt.Sprintf("%d", v) }
func ratio(v float64) string { return fmt.Sprintf("%.6f", v) }

// breakdownRow renders a Measurement as a Figure 9(a)-style row.
func breakdownRow(label string, m Measurement) []string {
	s := m.Stats
	return []string{
		label, m.Strategy, ms(s.TotalMS), ms(s.DBMS), ms(s.CPUMS),
		ms(s.NetMS), ms(s.MiscMS), fmt.Sprintf("%d", m.Rows),
	}
}

// volumeRow renders a Measurement as a Figure 9(b)-style row.
func volumeRow(label string, m Measurement) []string {
	s := m.Stats
	return []string{
		label, m.Strategy, bytesOf(s.CVDA), bytesOf(s.CVDT),
		bytesOf(s.ResultBytes), ratio(s.CVRF()),
	}
}
