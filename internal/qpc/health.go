package qpc

import (
	"sync"
	"time"

	"mocha/internal/obs"
)

// Per-DAP health tracking and circuit breaking. Every transport outcome
// against a site is reported here; a run of consecutive transient
// failures trips the site's breaker open. An open breaker does not make
// the site unreachable — MOCHA has no replicas, so every plan that needs
// the site's data must still talk to it — it changes how the QPC spends
// effort there: the optimizer stops shipping code to the site (degraded
// fragments re-plan under data shipping, annotated in EXPLAIN), the
// retry path stops burning budget on it (one attempt, which doubles as
// the probe), and the resume path stops trusting its retained streams.
// After OpenFor the breaker is half-open: retries are permitted again
// and the first success closes it.

// BreakerPolicy configures the per-site circuit breaker. The zero value
// means "use defaults"; set Disabled to turn the breaker off.
type BreakerPolicy struct {
	// FailureThreshold is the consecutive transient-failure count that
	// trips a site's breaker open. Default 3.
	FailureThreshold int
	// OpenFor is how long an open breaker refuses retries before going
	// half-open. Default 3s.
	OpenFor time.Duration
	// Disabled turns health tracking into pure bookkeeping: nothing
	// trips, nothing fails fast, the planner never sees a degraded site.
	Disabled bool

	// Now is an injection point for tests; nil means time.Now.
	Now func() time.Time
}

func (p BreakerPolicy) withDefaults() BreakerPolicy {
	if p.FailureThreshold <= 0 {
		p.FailureThreshold = 3
	}
	if p.OpenFor <= 0 {
		p.OpenFor = 3 * time.Second
	}
	return p
}

func (p BreakerPolicy) now() time.Time {
	if p.Now != nil {
		return p.Now()
	}
	return time.Now()
}

// siteHealth is one site's rolling record.
type siteHealth struct {
	open     bool
	openedAt time.Time
	forced   bool // ForceOpen pins the breaker open until a Reset
	fails    int  // consecutive transient failures

	successes  int64
	failures   int64
	lastErr    string
	ewmaMicros float64 // rolling latency of successful operations
	picks      int64   // times PickReplica chose this site
}

// HealthRegistry tracks per-site health and breaker state for a QPC.
type HealthRegistry struct {
	pol BreakerPolicy

	mu    sync.Mutex
	sites map[string]*siteHealth

	opened    *obs.Counter
	reclosed  *obs.Counter
	openSites *obs.Gauge
}

func newHealthRegistry(pol BreakerPolicy, r *obs.Registry) *HealthRegistry {
	return &HealthRegistry{
		pol:       pol.withDefaults(),
		sites:     make(map[string]*siteHealth),
		opened:    r.Counter(obs.MQpcBreakerOpened),
		reclosed:  r.Counter(obs.MQpcBreakerReclosed),
		openSites: r.Gauge(obs.MQpcBreakerOpenSites),
	}
}

func (h *HealthRegistry) site(name string) *siteHealth {
	sh, ok := h.sites[name]
	if !ok {
		sh = &siteHealth{}
		h.sites[name] = sh
	}
	return sh
}

func (h *HealthRegistry) countOpen() int64 {
	var n int64
	for _, sh := range h.sites {
		if sh.open {
			n++
		}
	}
	return n
}

// ReportSuccess records a successful operation against the site. It
// closes an open breaker (the operation was the probe) unless the
// breaker was forced open.
func (h *HealthRegistry) ReportSuccess(site string, latency time.Duration) {
	if h == nil || h.pol.Disabled {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	sh := h.site(site)
	sh.successes++
	sh.fails = 0
	if latency > 0 {
		const alpha = 0.3
		sh.ewmaMicros = alpha*float64(latency.Microseconds()) + (1-alpha)*sh.ewmaMicros
	}
	if sh.open && !sh.forced {
		sh.open = false
		h.reclosed.Inc()
		h.openSites.Set(h.countOpen())
	}
}

// ReportFailure records a transient transport failure against the site,
// tripping the breaker when the consecutive run reaches the threshold.
func (h *HealthRegistry) ReportFailure(site string, err error) {
	if h == nil || h.pol.Disabled {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	sh := h.site(site)
	sh.failures++
	sh.fails++
	if err != nil {
		sh.lastErr = err.Error()
	}
	if !sh.open && sh.fails >= h.pol.FailureThreshold {
		sh.open = true
		sh.openedAt = h.pol.now()
		h.opened.Inc()
		h.openSites.Set(h.countOpen())
	} else if sh.open {
		// A failed probe re-arms the open period.
		sh.openedAt = h.pol.now()
	}
}

// Degraded reports whether the site's breaker is open (including
// half-open: the site stays degraded for planning until a success
// closes the breaker). This is the optimizer's health oracle.
func (h *HealthRegistry) Degraded(site string) bool {
	if h == nil || h.pol.Disabled {
		return false
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.site(site).open
}

// FailFast reports whether retries against the site should be skipped
// right now: the breaker is open and the half-open window has not been
// reached. The first attempt of an operation is always allowed — it is
// the probe.
func (h *HealthRegistry) FailFast(site string) bool {
	if h == nil || h.pol.Disabled {
		return false
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	sh := h.site(site)
	if !sh.open {
		return false
	}
	if sh.forced {
		return true
	}
	return h.pol.now().Sub(sh.openedAt) < h.pol.OpenFor
}

// PickReplica chooses which of a partition's replica sites should serve
// a read. Healthy sites (breaker closed) are preferred; among the
// eligible, the least-picked wins, spreading partition reads across a
// replica set without any per-query coordination. When every replica's
// breaker is open the least-picked of them all is returned — a plan
// still needs some site to try, and the attempt doubles as the probe.
func (h *HealthRegistry) PickReplica(sites []string) string {
	if len(sites) == 0 {
		return ""
	}
	if h == nil || len(sites) == 1 {
		return sites[0]
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	for pass := 0; pass < 2; pass++ {
		var best *siteHealth
		bestName := ""
		for _, name := range sites {
			sh := h.site(name)
			if pass == 0 && sh.open {
				continue
			}
			if best == nil || sh.picks < best.picks {
				best, bestName = sh, name
			}
		}
		if best != nil {
			best.picks++
			return bestName
		}
	}
	return sites[0] // unreachable: pass 1 always finds a site
}

// State renders the site's breaker state: "closed", "open" or
// "half-open".
func (h *HealthRegistry) State(site string) string {
	if h == nil || h.pol.Disabled {
		return "closed"
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	sh := h.site(site)
	switch {
	case !sh.open:
		return "closed"
	case !sh.forced && h.pol.now().Sub(sh.openedAt) >= h.pol.OpenFor:
		return "half-open"
	default:
		return "open"
	}
}

// ForceOpen pins the site's breaker open until Reset — operational
// override and test hook.
func (h *HealthRegistry) ForceOpen(site string) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	sh := h.site(site)
	if !sh.open {
		sh.open = true
		sh.openedAt = h.pol.now()
		h.opened.Inc()
	}
	sh.forced = true
	h.openSites.Set(h.countOpen())
}

// Reset closes the site's breaker and clears its failure run.
func (h *HealthRegistry) Reset(site string) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	sh := h.site(site)
	sh.open = false
	sh.forced = false
	sh.fails = 0
	h.openSites.Set(h.countOpen())
}
