package qpc

import (
	"context"

	"mocha/internal/wire"
)

// ProcCall issues a procedural request (section 3.2) to a site's DAP —
// operations outside the query abstraction, such as enumerating the
// tables a file server offers. The configured QueryTimeout bounds the
// whole call.
func (s *Server) ProcCall(site, op string, args ...string) ([]string, error) {
	ctx := context.Background()
	if d := s.cfg.QueryTimeout; d > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}
	ds, err := s.openSession(ctx, site, "")
	if err != nil {
		return nil, err
	}
	defer ds.close()
	payload, err := wire.EncodeXML(&wire.ProcCall{Op: op, Args: args})
	if err != nil {
		return nil, err
	}
	if err := ds.conn.Send(wire.MsgProcCall, payload); err != nil {
		return nil, err
	}
	data, err := ds.conn.Expect(wire.MsgProcResult)
	if err != nil {
		return nil, err
	}
	var res wire.ProcResult
	if err := wire.DecodeXML(data, &res); err != nil {
		return nil, err
	}
	return res.Lines, nil
}
