package qpc

import (
	"net"
	"testing"

	"mocha/internal/types"
	"mocha/internal/wire"
)

// testConn is a minimal wire-protocol client used by server tests (the
// full client lives in pkg/mocha).
type testConn struct {
	conn *wire.Conn
}

func newTestConn(nc net.Conn) *testConn { return &testConn{conn: wire.NewConn(nc)} }

func (c *testConn) Close() { c.conn.Close() }

func (c *testConn) hello(t *testing.T) {
	t.Helper()
	data, _ := wire.EncodeXML(&wire.Hello{Role: "client", Site: "test"})
	if err := c.conn.Send(wire.MsgHello, data); err != nil {
		t.Fatal(err)
	}
	if _, err := c.conn.Expect(wire.MsgHelloAck); err != nil {
		t.Fatal(err)
	}
}

func (c *testConn) query(t *testing.T, sql string) ([]types.Tuple, QueryStats) {
	t.Helper()
	if err := c.conn.Send(wire.MsgQuery, []byte(sql)); err != nil {
		t.Fatal(err)
	}
	data, err := c.conn.Expect(wire.MsgResultSchema)
	if err != nil {
		t.Fatal(err)
	}
	var msg wire.SchemaMsg
	if err := wire.DecodeXML(data, &msg); err != nil {
		t.Fatal(err)
	}
	schema, err := wire.MsgToSchema(msg)
	if err != nil {
		t.Fatal(err)
	}
	r := wire.NewBatchReader(c.conn, schema)
	var rows []types.Tuple
	for {
		tup, err := r.Next()
		if err != nil {
			t.Fatal(err)
		}
		if tup == nil {
			break
		}
		rows = append(rows, tup)
	}
	var stats QueryStats
	if err := wire.DecodeXML(r.EOSPayload, &stats); err != nil {
		t.Fatal(err)
	}
	return rows, stats
}
