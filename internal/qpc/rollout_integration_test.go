package qpc

// In-package rollout lifecycle suite on the chaos harness (a real QPC
// and two DAPs over netsim): the controller's full path — start, route,
// canary execution, oracle, shadow run, judge, abort/promote, DAP cache
// invalidation, reports — driven through Server.Execute and the public
// rollout methods.

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"mocha/internal/catalog"
	"mocha/internal/core"
	"mocha/internal/ops"
	"mocha/internal/vm"
	"mocha/internal/wire"
)

const rolloutSQL = "SELECT time, AvgEnergy(image) FROM Rasters"

// rolloutHarness is a chaos harness with code shipping forced on and
// the rollout policy under test; it keeps the catalog so tests can
// stage releases.
func rolloutHarness(t *testing.T, policy RolloutPolicy) (*chaosHarness, *catalog.Catalog) {
	t.Helper()
	var cat *catalog.Catalog
	h := newChaosHarness(t, func(c *Config) {
		cat = c.Cat
		c.Strategy = core.StrategyCodeShip
		c.Rollout = policy
		c.QueryTimeout = 10 * time.Second
	})
	return h, cat
}

// stageAvgEnergyV2 stages a v2 of the builtin AvgEnergy derived from its
// real MVM source by mutate (after the version bump), so wrong and
// correct upgrades share everything but the seeded difference.
func stageAvgEnergyV2(t *testing.T, cat *catalog.Catalog, tag string, mutate func(string) string) *catalog.Release {
	t.Helper()
	d, ok := ops.Builtins().Lookup("AvgEnergy")
	if !ok || d.Source == "" {
		t.Fatal("builtin AvgEnergy has no MVM source")
	}
	src := strings.Replace(d.Source, "program AvgEnergy version 1.0", "program AvgEnergy version 2.0", 1)
	p, err := vm.Assemble(mutate(src))
	if err != nil {
		t.Fatal(err)
	}
	rel, err := cat.Repo().StageProgram(p, tag)
	if err != nil {
		t.Fatal(err)
	}
	return rel
}

// halveResult seeds a silent wrong answer: the final average is
// multiplied by 0.5 before returning.
func halveResult(src string) string {
	src = strings.Replace(src, "const zero float 0", "const zero float 0\nconst half float 0.5", 1)
	return strings.Replace(src, "  divf\n  ret", "  divf\n  const half\n  mulf\n  ret", 1)
}

// noopPrefix seeds a digest change with identical semantics: a
// redundant store of an already-zeroed local.
func noopPrefix(src string) string {
	return strings.Replace(src, "func eval args=1 locals=3",
		"func eval args=1 locals=3\n  pushi 0\n  store 0", 1)
}

// TestRolloutIntegrationDivergenceAbort canaries a silently-wrong v2 at
// 100%: the very first comparison must catch the digest divergence,
// deliver the active release's rows to the client, auto-roll-back, and
// leave typed evidence plus clean reports behind.
func TestRolloutIntegrationDivergenceAbort(t *testing.T) {
	h, cat := rolloutHarness(t, RolloutPolicy{PromoteAfter: -1, MinSamples: 1 << 20})
	baseline, err := h.executeWithin(t, 10*time.Second, rolloutSQL)
	if err != nil {
		t.Fatal(err)
	}
	if baseline.Stats.CodeClassesShipped == 0 {
		t.Fatal("baseline shipped no code; no query would be rollout-eligible")
	}
	wantRows := fmt.Sprint(baseline.Rows)
	v1, _ := cat.Repo().ActiveRelease("AvgEnergy")
	rel := stageAvgEnergyV2(t, cat, "v2", halveResult)
	if rel.Digest == v1.Digest {
		t.Fatal("wrong v2 shares v1's digest")
	}

	// Rejected starts: unknown class, unknown tag, senseless fractions.
	if _, err := h.srv.StartRollout("Ghost", "v2", 0.5); err == nil {
		t.Error("rollout of an unknown class accepted")
	}
	if _, err := h.srv.StartRollout("AvgEnergy", "ghost-tag", 0.5); err == nil {
		t.Error("rollout of an unknown tag accepted")
	}
	for _, frac := range []float64{0, -0.25, 1.5} {
		if _, err := h.srv.StartRollout("AvgEnergy", "v2", frac); err == nil {
			t.Errorf("fraction %v accepted", frac)
		}
	}
	msg, err := h.srv.StartRollout("AvgEnergy", "v2", 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(msg, rel.Digest) {
		t.Errorf("start message %q omits the digest", msg)
	}
	// One rollout per class while it runs.
	if _, err := h.srv.StartRollout("AvgEnergy", "v2", 0.5); err == nil {
		t.Error("second concurrent rollout of the same class accepted")
	}

	// First canaried query: no oracle yet, so the active release shadow
	// runs, the digests disagree, and the client gets the active rows.
	res, err := h.executeWithin(t, 10*time.Second, rolloutSQL)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(res.Rows) != wantRows {
		t.Fatal("client saw rows diverging from the active release")
	}
	if got := h.srv.RolloutStatus("AvgEnergy"); got != "aborted" {
		t.Fatalf("status after divergence = %q, want aborted", got)
	}
	abort := h.srv.RolloutAbort("AvgEnergy")
	if abort == nil {
		t.Fatal("no abort evidence")
	}
	if !strings.Contains(abort.Reason, "divergence") || abort.SQL == "" ||
		abort.WantDigest == abort.GotDigest {
		t.Errorf("abort evidence = %+v", abort)
	}
	if _, ok := cat.Repo().CanaryRelease("AvgEnergy"); ok {
		t.Error("canary pointer survived the abort")
	}
	if active, _ := cat.Repo().ActiveRelease("AvgEnergy"); active.Digest != v1.Digest {
		t.Error("active pointer moved during an abort")
	}
	if got := h.srv.met.rolloutDivergences.Value(); got == 0 {
		t.Error("divergence not counted")
	}

	// The rollout is over: queries route normally again and still match.
	res, err = h.executeWithin(t, 10*time.Second, rolloutSQL)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(res.Rows) != wantRows {
		t.Error("post-abort query diverged")
	}

	// Reports: SHOW ROLLOUTS carries the evidence, SHOW RELEASES the
	// history with markers, and unknown classes error cleanly.
	report := h.srv.RolloutReport()
	for _, want := range []string{"AvgEnergy@v2", "aborted", "result digest divergence", "evidence:"} {
		if !strings.Contains(report, want) {
			t.Errorf("RolloutReport missing %q:\n%s", want, report)
		}
	}
	releases, err := h.srv.ReleasesReport("AvgEnergy")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(releases, "[active]") || !strings.Contains(releases, rel.Digest) {
		t.Errorf("ReleasesReport(AvgEnergy):\n%s", releases)
	}
	all, err := h.srv.ReleasesReport("")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(all, "AvgEnergy") || !strings.Contains(all, "Clip") {
		t.Errorf("ReleasesReport(\"\") incomplete:\n%s", all)
	}
	if _, err := h.srv.ReleasesReport("Ghost"); err == nil {
		t.Error("ReleasesReport of an unknown class succeeded")
	}

	// Manual rollback of a fresh rollout (operator hits ROLLBACK before
	// the controller decides), then nothing left to abort.
	if _, err := h.srv.StartRollout("AvgEnergy", "v2", 0.5); err != nil {
		t.Fatal(err)
	}
	if _, err := h.srv.AbortRollout("AvgEnergy", "manual ROLLBACK"); err != nil {
		t.Fatal(err)
	}
	if _, err := h.srv.AbortRollout("AvgEnergy", "again"); err == nil {
		t.Error("aborting with no running rollout succeeded")
	}
	if h.srv.RolloutAbort("AvgEnergy").Reason != "manual ROLLBACK" {
		t.Error("manual abort reason lost")
	}
}

// TestRolloutIntegrationPromotion canaries a correct, digest-different
// v2 at 100%: comparisons match, the rollout auto-promotes after the
// configured count, and a later rollout can also be promoted manually.
func TestRolloutIntegrationPromotion(t *testing.T) {
	h, cat := rolloutHarness(t, RolloutPolicy{PromoteAfter: 2, MinSamples: 1 << 20})
	baseline, err := h.executeWithin(t, 10*time.Second, rolloutSQL)
	if err != nil {
		t.Fatal(err)
	}
	wantRows := fmt.Sprint(baseline.Rows)

	if _, err := h.srv.PromoteRollout("AvgEnergy"); err == nil {
		t.Error("promoting with no running rollout succeeded")
	}
	rel := stageAvgEnergyV2(t, cat, "v2", noopPrefix)
	if _, err := h.srv.StartRollout("AvgEnergy", "v2", 1.0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6 && h.srv.RolloutStatus("AvgEnergy") == "running"; i++ {
		res, err := h.executeWithin(t, 10*time.Second, rolloutSQL)
		if err != nil {
			t.Fatalf("query %d under rollout: %v", i, err)
		}
		if fmt.Sprint(res.Rows) != wantRows {
			t.Fatalf("query %d diverged under a correct canary", i)
		}
	}
	if got := h.srv.RolloutStatus("AvgEnergy"); got != "promoted" {
		t.Fatalf("status = %q, want promoted\n%s", got, h.srv.RolloutReport())
	}
	if active, _ := cat.Repo().ActiveRelease("AvgEnergy"); active.Digest != rel.Digest {
		t.Error("promotion did not activate v2")
	}
	if _, ok := cat.Repo().CanaryRelease("AvgEnergy"); ok {
		t.Error("promotion left the canary pointer set")
	}
	if got := h.srv.met.rolloutPromotions.Value(); got != 1 {
		t.Errorf("promotions counter = %d", got)
	}
	if !strings.Contains(h.srv.RolloutReport(), "promoted") {
		t.Error("report does not show the promotion")
	}
	// Post-promotion queries (v2 active, no rollout) still match.
	res, err := h.executeWithin(t, 10*time.Second, rolloutSQL)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(res.Rows) != wantRows {
		t.Error("post-promotion query diverged")
	}

	// Manual promotion: the operator vouches for v3 before the
	// controller has seen enough traffic.
	rel3 := stageAvgEnergyV2(t, cat, "v3", func(s string) string {
		return noopPrefix(noopPrefix(s))
	})
	if _, err := h.srv.StartRollout("AvgEnergy", "v3", 0.5); err != nil {
		t.Fatal(err)
	}
	if _, err := h.srv.PromoteRollout("AvgEnergy"); err != nil {
		t.Fatal(err)
	}
	if active, _ := cat.Repo().ActiveRelease("AvgEnergy"); active.Digest != rel3.Digest {
		t.Error("manual promotion did not activate v3")
	}
	if h.srv.RolloutStatus("AvgEnergy") != "promoted" {
		t.Error("manual promotion status wrong")
	}
}

// TestRolloutIntegrationObserveActive: a healthy canary is compared via
// the oracle fast path — only the first sighting of a SQL shadow-runs
// the active release; later matching runs deliver canary rows directly
// and the rollout stays running.
func TestRolloutIntegrationObserveActive(t *testing.T) {
	h, cat := rolloutHarness(t, RolloutPolicy{PromoteAfter: -1, MinSamples: 1 << 20})
	// Uncanaried traffic before any rollout exists must execute plainly.
	if _, err := h.executeWithin(t, 10*time.Second, rolloutSQL); err != nil {
		t.Fatal(err)
	}
	stageAvgEnergyV2(t, cat, "v2", noopPrefix)
	if _, err := h.srv.StartRollout("AvgEnergy", "v2", 1.0); err != nil {
		t.Fatal(err)
	}
	// First canaried query: no oracle for this SQL yet, so the active
	// release shadow-runs once and records it.
	if _, err := h.executeWithin(t, 10*time.Second, rolloutSQL); err != nil {
		t.Fatal(err)
	}
	if h.srv.met.rolloutShadowRuns.Value() == 0 {
		t.Fatal("first canaried query did not shadow-run")
	}
	// Second canaried query: the canary digest matches the recorded
	// oracle, so its rows are delivered directly — no second shadow.
	shadowsBefore := h.srv.met.rolloutShadowRuns.Value()
	res, err := h.executeWithin(t, 10*time.Second, rolloutSQL)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no rows under canary")
	}
	if got := h.srv.met.rolloutShadowRuns.Value(); got != shadowsBefore {
		t.Errorf("oracle hit still shadow-ran (%d -> %d)", shadowsBefore, got)
	}
	if h.srv.RolloutStatus("AvgEnergy") != "running" {
		t.Fatalf("healthy canary not still running:\n%s", h.srv.RolloutReport())
	}
	if _, err := h.srv.AbortRollout("AvgEnergy", "test cleanup"); err != nil {
		t.Fatal(err)
	}
}

// TestRolloutIntegrationWireVerbs drives the rollout surface the way
// mocha-cli does — ROLLOUT/ROLLBACK/PROMOTE and the SHOW verbs as wire
// queries — including the parse failures.
func TestRolloutIntegrationWireVerbs(t *testing.T) {
	h, cat := rolloutHarness(t, RolloutPolicy{PromoteAfter: -1, MinSamples: 1 << 20})
	stageAvgEnergyV2(t, cat, "v2", halveResult)
	l, err := h.network.Listen("qpc")
	if err != nil {
		t.Fatal(err)
	}
	go h.srv.Serve(l)
	defer l.Close()

	ask := func(sql string) string {
		t.Helper()
		nc, err := h.network.Dial("qpc")
		if err != nil {
			t.Fatal(err)
		}
		conn := newTestConn(nc)
		defer conn.Close()
		conn.hello(t)
		rows, _ := conn.query(t, sql)
		var b strings.Builder
		for _, r := range rows {
			fmt.Fprintln(&b, r[0])
		}
		return b.String()
	}
	askErr := func(sql string) error {
		t.Helper()
		nc, err := h.network.Dial("qpc")
		if err != nil {
			t.Fatal(err)
		}
		conn := newTestConn(nc)
		defer conn.Close()
		conn.hello(t)
		if err := conn.conn.Send(wire.MsgQuery, []byte(sql)); err != nil {
			t.Fatal(err)
		}
		_, err = conn.conn.Expect(wire.MsgResultSchema)
		return err
	}

	if got := ask("ROLLOUT AvgEnergy v2 AT 25%"); !strings.Contains(got, "25%") {
		t.Errorf("ROLLOUT reply: %s", got)
	}
	if got := ask("SHOW ROLLOUTS"); !strings.Contains(got, "running") {
		t.Errorf("SHOW ROLLOUTS while running: %s", got)
	}
	if got := ask("ROLLBACK AvgEnergy"); !strings.Contains(got, "rolled back") {
		t.Errorf("ROLLBACK reply: %s", got)
	}
	if got := ask("SHOW RELEASES"); !strings.Contains(got, "AvgEnergy") {
		t.Errorf("SHOW RELEASES: %s", got)
	}
	if got := ask("SHOW RELEASES AvgEnergy"); !strings.Contains(got, "[active]") {
		t.Errorf("SHOW RELEASES AvgEnergy: %s", got)
	}
	// The ratio form starts another rollout; a manual PROMOTE ends it.
	if got := ask("ROLLOUT AvgEnergy v2 AT 0.5"); !strings.Contains(got, "50%") {
		t.Errorf("ratio ROLLOUT reply: %s", got)
	}
	if got := ask("PROMOTE AvgEnergy"); !strings.Contains(got, "now active") {
		t.Errorf("PROMOTE reply: %s", got)
	}

	for _, bad := range []string{
		"ROLLOUT AvgEnergy v2",      // missing AT <fraction>
		"ROLLOUT AvgEnergy v2 AT x", // unparseable fraction
		"ROLLOUT Ghost v2 AT 50%",   // unknown class
		"PROMOTE AvgEnergy",         // nothing running anymore
		"ROLLBACK AvgEnergy",        // nothing running anymore
		"DESCRIBE Ghost",            // unknown catalog resource
	} {
		if err := askErr(bad); err == nil {
			t.Errorf("%q did not error", bad)
		}
	}

	// The neighbouring text verbs flow through the same serve path.
	if got := ask("EXPLAIN " + rolloutSQL); !strings.Contains(got, "Rasters") {
		t.Errorf("EXPLAIN: %s", got)
	}
	if got := ask("DESCRIBE Rasters"); !strings.Contains(got, "Rasters") {
		t.Errorf("DESCRIBE: %s", got)
	}
	if got := ask("SHOW TABLES"); !strings.Contains(got, "Rasters") {
		t.Errorf("SHOW TABLES: %s", got)
	}
	if got := ask("SHOW METRICS"); !strings.Contains(got, "qpc_rollout_aborts") {
		t.Errorf("SHOW METRICS missing rollout counters: %s", got)
	}
}

// TestRolloutJudgeMatrix unit-drives the post-shadow judgment over the
// error/success matrix and the latency and promotion endings, without a
// network: only the controller's bookkeeping is under test.
func TestRolloutJudgeMatrix(t *testing.T) {
	newCtrl := func(policy RolloutPolicy) (*rolloutController, *catalog.Catalog) {
		reg := ops.Builtins()
		cat := catalog.New(reg, catalog.NewRepositoryFromRegistry(reg))
		srv := New(Config{Cat: cat, Rollout: policy})
		stageAvgEnergyV2(t, cat, "v2", noopPrefix)
		return srv.rollouts, cat
	}
	start := func(c *rolloutController) (*rolloutState, *canaryDecision) {
		t.Helper()
		st, err := c.start("AvgEnergy", "v2", 1.0)
		if err != nil {
			t.Fatal(err)
		}
		return st, &canaryDecision{st: st}
	}
	boom := errors.New("boom")
	ok := runOutcome{digest: "d", micros: 50}

	// Canary-only failure: divergent behaviour; past MaxCanaryErrors=0
	// it aborts, and the active rows are what gets delivered.
	c, _ := newCtrl(RolloutPolicy{PromoteAfter: -1, MinSamples: 1 << 20})
	st, dec := start(c)
	c.checkOracleErr(dec)
	if c.judge(dec, "q1", runOutcome{err: boom}, ok) {
		t.Error("failed canary's rows delivered")
	}
	if st.Status != rolloutAborted || !strings.Contains(st.Abort.Reason, "canary execution failed") {
		t.Errorf("canary-failure state = %s (%+v)", st.Status, st.Abort)
	}
	if st.Abort.CanaryErr == "" {
		t.Error("canary error lost from the evidence")
	}

	// Both releases failed: the environment is sick, not the canary —
	// no abort, and the caller surfaces the active release's error.
	c, _ = newCtrl(RolloutPolicy{PromoteAfter: -1, MinSamples: 1 << 20, MaxCanaryErrors: 10})
	st, dec = start(c)
	if c.judge(dec, "q1", runOutcome{err: boom}, runOutcome{err: boom}) {
		t.Error("rows delivered when both releases failed")
	}
	if st.Status != rolloutRunning {
		t.Errorf("both-failed judged the canary: %s", st.Status)
	}
	// Canary succeeded where active failed: no judgment, deliver.
	if !c.judge(dec, "q2", ok, runOutcome{err: boom}) {
		t.Error("healthy canary rows withheld when only the active failed")
	}
	if st.Status != rolloutRunning {
		t.Errorf("active-failure judged the canary: %s", st.Status)
	}

	// Latency regression: matching digests, canary consistently slower
	// than LatencyFactor x active after MinSamples comparisons.
	c, _ = newCtrl(RolloutPolicy{PromoteAfter: -1, MinSamples: 2, LatencyFactor: 2})
	st, dec = start(c)
	for i := 0; i < 8 && st.Status == rolloutRunning; i++ {
		c.judge(dec, fmt.Sprintf("q%d", i),
			runOutcome{digest: "d", micros: 5000}, runOutcome{digest: "d", micros: 10})
	}
	if st.Status != rolloutAborted || !strings.Contains(st.Abort.Reason, "latency regression") {
		t.Errorf("latency state = %s (%+v)", st.Status, st.Abort)
	}

	// Promotion: enough clean matches move the active pointer.
	c, cat := newCtrl(RolloutPolicy{PromoteAfter: 1, MinSamples: 1 << 20})
	st, dec = start(c)
	if !c.judge(dec, "q1", ok, ok) {
		t.Error("matching canary rows withheld")
	}
	if st.Status != rolloutPromoted {
		t.Errorf("status after PromoteAfter=1 match: %s", st.Status)
	}
	if active, _ := cat.Repo().ActiveRelease("AvgEnergy"); active.Tag != "v2" {
		t.Error("promotion did not activate the canary release")
	}
}

// busyLoop stages a semantically-identical but statically far costlier
// v2: a bounded 20000-iteration counter loop prefixed to eval, which the
// verifier prices into the release's instruction budget.
func busyLoop(src string) string {
	return strings.Replace(src, "func eval args=1 locals=3",
		`func eval args=1 locals=4
  pushi 0
  store 3
busy:
  load 3
  pushi 20000
  lt
  jz busydone
  load 3
  pushi 1
  addi
  store 3
  jmp busy
busydone:`, 1)
}

// TestRolloutStaticCostPrior pins the verifier-seeded latency judge: a
// canary whose static instruction budget exceeds LatencyFactor× the
// active release's starts with the latency EWMAs seeded from the static
// units and one sample short of MinSamples, so the FIRST confirming
// live comparison aborts the rollout — long before MinSamples queries
// have paid for the regression. A canary within budget stays unseeded.
func TestRolloutStaticCostPrior(t *testing.T) {
	newCtrl := func(tag string, mutate func(string) string) *rolloutController {
		reg := ops.Builtins()
		cat := catalog.New(reg, catalog.NewRepositoryFromRegistry(reg))
		srv := New(Config{Cat: cat, Rollout: RolloutPolicy{PromoteAfter: -1}})
		stageAvgEnergyV2(t, cat, tag, mutate)
		return srv.rollouts
	}

	// Costly canary: seeded prior, abort on the first live comparison.
	c := newCtrl("v2", busyLoop)
	st, err := c.start("AvgEnergy", "v2", 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if st.CanaryStaticUnits <= 0 || st.ActiveStaticUnits <= 0 {
		t.Fatalf("static units not recorded: canary %d, active %d", st.CanaryStaticUnits, st.ActiveStaticUnits)
	}
	if float64(st.CanaryStaticUnits) <= c.policy.LatencyFactor*float64(st.ActiveStaticUnits) {
		t.Fatalf("busy-loop canary budget %d not past %.1fx active %d",
			st.CanaryStaticUnits, c.policy.LatencyFactor, st.ActiveStaticUnits)
	}
	if st.latencySamples != c.policy.MinSamples-1 {
		t.Fatalf("latencySamples = %d, want MinSamples-1 = %d", st.latencySamples, c.policy.MinSamples-1)
	}
	if st.canaryEWMA <= 0 || st.activeEWMA <= 0 {
		t.Fatalf("EWMA priors not seeded: canary %v, active %v", st.canaryEWMA, st.activeEWMA)
	}
	dec := &canaryDecision{st: st}
	// One live comparison, matching digests, timings consistent with the
	// static story: that single sample condemns the canary.
	c.judge(dec, "q1", runOutcome{digest: "d", micros: 6000}, runOutcome{digest: "d", micros: 120})
	if st.Status != rolloutAborted || !strings.Contains(st.Abort.Reason, "latency regression") {
		t.Fatalf("status = %s (%+v), want latency abort on first comparison", st.Status, st.Abort)
	}
	if st.Comparisons >= c.policy.MinSamples {
		t.Errorf("took %d live comparisons; the static prior should need fewer than MinSamples=%d",
			st.Comparisons, c.policy.MinSamples)
	}
	if rep := c.report(); !strings.Contains(rep, "static budget:") {
		t.Errorf("report missing static budget line:\n%s", rep)
	}

	// Comparable canary: no seeding; live samples alone judge it.
	c2 := newCtrl("v2", noopPrefix)
	st2, err := c2.start("AvgEnergy", "v2", 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if st2.latencySamples != 0 || st2.canaryEWMA != 0 || st2.activeEWMA != 0 {
		t.Fatalf("comparable canary was seeded: samples=%d canary=%v active=%v",
			st2.latencySamples, st2.canaryEWMA, st2.activeEWMA)
	}
}
