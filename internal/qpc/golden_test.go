package qpc

import (
	"context"
	"flag"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"mocha/internal/core"
	"mocha/internal/netsim"
)

// Golden-file coverage for the EXPLAIN and EXPLAIN ANALYZE renderings.
// Regenerate with:
//
//	go test ./internal/qpc -run Golden -update

var update = flag.Bool("update", false, "rewrite golden files under testdata/")

var (
	traceIDRe = regexp.MustCompile(`q[0-9a-f]{8}-[0-9a-f]{4}`)
	msRe      = regexp.MustCompile(`\d+\.\d+ms`)
	floatRe   = regexp.MustCompile(`\d+\.\d+`)
	spaceRe   = regexp.MustCompile(`[ \t]+`)
)

// normalizeAnalysis strips everything nondeterministic from an EXPLAIN
// ANALYZE report — trace IDs, wall-clock timings, and the column padding
// derived from them — while keeping the structure, span names, sites,
// byte volumes and tuple counts, which are all deterministic.
func normalizeAnalysis(s string) string {
	s = traceIDRe.ReplaceAllString(s, "q<ID>")
	s = msRe.ReplaceAllString(s, "#ms")
	s = floatRe.ReplaceAllString(s, "#")
	var out []string
	for _, line := range strings.Split(strings.TrimRight(s, "\n"), "\n") {
		out = append(out, strings.TrimRight(spaceRe.ReplaceAllString(line, " "), " "))
	}
	return strings.Join(out, "\n") + "\n"
}

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if string(want) != got {
		t.Errorf("output diverges from %s\n--- got ---\n%s--- want ---\n%s", path, got, want)
	}
}

func TestGoldenExplain(t *testing.T) {
	cases := []struct {
		name string
		sql  string
	}{
		{"explain_scan_predicate", "SELECT time, AvgEnergy(image) FROM Rasters WHERE AvgEnergy(image) < 100"},
		{"explain_aggregate", "SELECT band, Count(time) FROM Rasters GROUP BY band"},
		{"explain_inflate", "SELECT time, IncrRes(image, 2) FROM Rasters"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := testQPC(t, core.StrategyAuto)
			text, err := s.Explain(tc.sql)
			if err != nil {
				t.Fatal(err)
			}
			// Plans are deterministic; only normalize cost floats so
			// estimator refinements don't churn the structural golden.
			got := normalizeAnalysis(text)
			checkGolden(t, tc.name, got)
		})
	}
}

// TestGoldenExplainAnalyzeRecovery pins the report shape on the two
// recovery paths: a stream interrupted and RESUMEd mid-flight (the
// resume span appears, volumes match a clean run) and a plan forced to
// data shipping by an open breaker (the degraded annotation appears and
// no code ships).
func TestGoldenExplainAnalyzeRecovery(t *testing.T) {
	t.Run("resumed_stream", func(t *testing.T) {
		h := newResumeHarness(t, nil, nil)
		// Deterministic byte threshold mid-stream: the ~166 KiB image
		// stream dies once around the halfway frame, then resumes.
		h.network.SetFault("dap1", &netsim.FaultPlan{DropFirstConnAfterBytes: 80 << 10})
		text, err := h.srv.ExplainAnalyze(context.Background(), streamQuery)
		if err != nil {
			t.Fatal(err)
		}
		if h.qpcCounter("qpc_stream_resumes") == 0 {
			t.Fatal("fault did not strike; golden would not cover the resume path")
		}
		checkGolden(t, "explain_analyze_resumed_stream", normalizeAnalysis(text))
	})
	t.Run("degraded_data_shipping", func(t *testing.T) {
		h := newResumeHarness(t, nil, nil)
		h.srv.Health().ForceOpen("site1")
		text, err := h.srv.ExplainAnalyze(context.Background(), codeShipQuery)
		if err != nil {
			t.Fatal(err)
		}
		checkGolden(t, "explain_analyze_degraded_site", normalizeAnalysis(text))
	})
}

// TestGoldenExplainPartitioned pins the plan and analysis renderings of
// scattered queries: the partitions line (surviving/total shards with
// their serving replicas), and the per-shard remote spans in the
// analysis.
func TestGoldenExplainPartitioned(t *testing.T) {
	t.Run("scatter", func(t *testing.T) {
		h := newPartitionHarness(t, nil)
		text, err := h.srv.Explain(partScanQuery)
		if err != nil {
			t.Fatal(err)
		}
		checkGolden(t, "explain_partitioned_scatter", normalizeAnalysis(text))
	})
	t.Run("pruned", func(t *testing.T) {
		h := newPartitionHarness(t, nil)
		text, err := h.srv.Explain("SELECT time, band FROM Rasters WHERE time < 1")
		if err != nil {
			t.Fatal(err)
		}
		checkGolden(t, "explain_partitioned_pruned", normalizeAnalysis(text))
	})
	t.Run("analyze_scatter", func(t *testing.T) {
		h := newPartitionHarness(t, nil)
		text, err := h.srv.ExplainAnalyze(context.Background(), partScanQuery)
		if err != nil {
			t.Fatal(err)
		}
		checkGolden(t, "explain_analyze_partitioned_scatter", normalizeAnalysis(text))
	})
}

func TestGoldenExplainAnalyze(t *testing.T) {
	t.Run("single_site", func(t *testing.T) {
		s := testQPC(t, core.StrategyAuto)
		text, err := s.ExplainAnalyze(context.Background(), "SELECT time, AvgEnergy(image) FROM Rasters WHERE AvgEnergy(image) < 100")
		if err != nil {
			t.Fatal(err)
		}
		checkGolden(t, "explain_analyze_single_site", normalizeAnalysis(text))
	})
	t.Run("two_site_join", func(t *testing.T) {
		h := newChaosHarness(t, nil)
		text, err := h.srv.ExplainAnalyze(context.Background(), joinQuery)
		if err != nil {
			t.Fatal(err)
		}
		checkGolden(t, "explain_analyze_two_site_join", normalizeAnalysis(text))
	})
}
