package qpc

// Retry with jittered exponential backoff for the idempotent phases of
// query execution: dialing a DAP, the HELLO handshake, and the
// CODE_CHECK / DEPLOY_CODE exchange. These run before a fragment is
// activated, so repeating them on a fresh connection cannot duplicate
// work at the data source; once a stream is live, failures abort the
// query instead (re-activating could re-read and re-send data).

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"syscall"
	"time"

	"mocha/internal/obs"
	"mocha/internal/wire"
)

// RetryPolicy configures retry-with-backoff for idempotent phases. The
// zero value means "use defaults" (see withDefaults); to disable
// retries set MaxAttempts to 1.
type RetryPolicy struct {
	// MaxAttempts bounds tries per operation (first try included).
	MaxAttempts int
	// BaseDelay is the backoff before the first retry; each further
	// retry multiplies it by Multiplier, capped at MaxDelay.
	BaseDelay  time.Duration
	MaxDelay   time.Duration
	Multiplier float64
	// Jitter is the fraction of each delay that is randomized: the
	// actual sleep is delay * (1 - Jitter/2 + Jitter*rand). 0.5 spreads
	// sleeps over ±25% so synchronized failures do not retry in lockstep.
	Jitter float64
	// Budget bounds total retries across all operations of one query, so
	// a query against several flaky sites cannot multiply its worst-case
	// latency per site.
	Budget int

	// Sleep and Rand are injection points for tests; nil means a real
	// context-aware sleep and math/rand.
	Sleep func(context.Context, time.Duration) error
	Rand  func() float64
}

// DefaultRetryPolicy is applied when Config.Retry is the zero value.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		MaxAttempts: 4,
		BaseDelay:   50 * time.Millisecond,
		MaxDelay:    2 * time.Second,
		Multiplier:  2,
		Jitter:      0.5,
		Budget:      8,
	}
}

// withDefaults fills unset fields. A zero policy becomes
// DefaultRetryPolicy; a partially set one keeps its explicit choices.
func (p RetryPolicy) withDefaults() RetryPolicy {
	d := DefaultRetryPolicy()
	if p.MaxAttempts == 0 {
		p.MaxAttempts = d.MaxAttempts
	}
	if p.BaseDelay == 0 {
		p.BaseDelay = d.BaseDelay
	}
	if p.MaxDelay == 0 {
		p.MaxDelay = d.MaxDelay
	}
	if p.Multiplier == 0 {
		p.Multiplier = d.Multiplier
	}
	if p.Budget == 0 {
		p.Budget = d.Budget
	}
	return p
}

// delay computes the sleep before retry number n (n = 1 for the first
// retry), applying exponential growth, the cap and jitter.
func (p RetryPolicy) delay(n int) time.Duration {
	d := float64(p.BaseDelay)
	for i := 1; i < n; i++ {
		d *= p.Multiplier
		if d >= float64(p.MaxDelay) {
			d = float64(p.MaxDelay)
			break
		}
	}
	if d > float64(p.MaxDelay) {
		d = float64(p.MaxDelay)
	}
	if p.Jitter > 0 {
		r := rand.Float64
		if p.Rand != nil {
			r = p.Rand
		}
		d *= 1 - p.Jitter/2 + p.Jitter*r()
	}
	return time.Duration(d)
}

// sleep waits for d or until the context ends.
func (p RetryPolicy) sleep(ctx context.Context, d time.Duration) error {
	if p.Sleep != nil {
		return p.Sleep(ctx, d)
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// retryBudget is the per-query pool of retries shared by all fragments.
// The optional counters make retry behaviour observable process-wide:
// retries counts tokens consumed, exhausted counts operations denied a
// retry because the pool ran dry.
type retryBudget struct {
	mu        sync.Mutex
	remaining int

	retries   *obs.Counter
	exhausted *obs.Counter
}

func newRetryBudget(p RetryPolicy) *retryBudget {
	return &retryBudget{remaining: p.Budget}
}

// take consumes one retry token, reporting false when the budget is
// exhausted.
func (b *retryBudget) take() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.remaining <= 0 {
		if b.exhausted != nil {
			b.exhausted.Inc()
		}
		return false
	}
	b.remaining--
	if b.retries != nil {
		b.retries.Inc()
	}
	return true
}

// ErrRetryBudgetExhausted marks a query that failed because its shared
// per-query retry budget ran dry, as opposed to an unretryable failure.
// Errors carrying it are BudgetExhaustedErrors, which also unwrap to the
// last transport error.
var ErrRetryBudgetExhausted = errors.New("query retry budget exhausted")

// BudgetExhaustedError is returned when an operation was denied a retry
// because the per-query budget ran dry. It unwraps both to
// ErrRetryBudgetExhausted (so callers can classify the exhaustion) and
// to Last (so the underlying transport failure stays inspectable).
type BudgetExhaustedError struct {
	// Op names the operation that was denied a retry.
	Op string
	// Last is the transport failure that triggered the denied retry.
	Last error
}

func (e *BudgetExhaustedError) Error() string {
	return fmt.Sprintf("%s: %v: %v", e.Op, ErrRetryBudgetExhausted, e.Last)
}

func (e *BudgetExhaustedError) Unwrap() []error {
	return []error{ErrRetryBudgetExhausted, e.Last}
}

// retryTransient runs op, retrying under the policy while the failure is
// transient (see transientErr), the context is alive, the shared budget
// has tokens, and the site's breaker permits retries. Each attempt's
// outcome is reported to the health registry (site may be empty for
// operations not tied to one). The final error is the last attempt's.
func retryTransient(ctx context.Context, p RetryPolicy, budget *retryBudget, health *HealthRegistry, site, what string, op func() error) error {
	var err error
	for attempt := 1; ; attempt++ {
		start := time.Now()
		err = op()
		if err == nil {
			if site != "" {
				health.ReportSuccess(site, time.Since(start))
			}
			return nil
		}
		if !transientErr(err) {
			return err
		}
		if site != "" {
			health.ReportFailure(site, err)
		}
		if attempt >= p.MaxAttempts {
			return fmt.Errorf("%s: %d attempts exhausted: %w", what, attempt, err)
		}
		if ctx.Err() != nil {
			return fmt.Errorf("%s: %w (last failure: %v)", what, ctx.Err(), err)
		}
		if site != "" && health.FailFast(site) {
			return fmt.Errorf("%s: breaker open at %s, not retrying: %w", what, site, err)
		}
		if !budget.take() {
			return &BudgetExhaustedError{Op: what, Last: err}
		}
		if serr := p.sleep(ctx, p.delay(attempt)); serr != nil {
			return fmt.Errorf("%s: %w (last failure: %v)", what, serr, err)
		}
	}
}

// transientErr reports whether err is a transport-level failure worth a
// fresh-connection retry. Remote errors are excluded — the peer is alive
// and rejected the request for a reason — as are context errors, which
// mean the query's own deadline fired.
func transientErr(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var re *wire.RemoteError
	if errors.As(err, &re) {
		return false
	}
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) ||
		errors.Is(err, net.ErrClosed) ||
		errors.Is(err, syscall.ECONNREFUSED) || errors.Is(err, syscall.ECONNRESET) ||
		errors.Is(err, syscall.EPIPE) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne)
}
