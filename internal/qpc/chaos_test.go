package qpc

// Chaos suite: a real QPC and two DAPs wired over netsim, with fault
// plans injected on individual links. Every scenario must terminate
// promptly — either the query succeeds (after retries) or it fails
// within its deadline with an error that names the problem. A hang is
// the one unacceptable outcome, so every query runs under a watchdog.

import (
	"errors"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"mocha/internal/catalog"
	"mocha/internal/core"
	"mocha/internal/dap"
	"mocha/internal/netsim"
	"mocha/internal/ops"
	"mocha/internal/sequoia"
	"mocha/internal/storage"
)

// chaosHarness is a QPC with two DAP sites: site1 (addr "dap1") holds
// Rasters and Rasters1, site2 (addr "dap2") holds Rasters2.
type chaosHarness struct {
	srv     *Server
	network *netsim.Network
}

// joinQuery spans both sites; faulting either link disturbs it.
const joinQuery = `SELECT R1.time FROM Rasters1 R1, Rasters2 R2 WHERE R1.location = R2.location`

// streamQuery ships every raster image from site1: a long tuple stream,
// so byte-threshold faults strike mid-stream.
const streamQuery = `SELECT image FROM Rasters`

func newChaosHarness(t *testing.T, tune func(*Config)) *chaosHarness {
	t.Helper()
	network := netsim.NewNetwork(nil)
	cfg := sequoia.TestScale()

	store1, err := storage.OpenStore("", 32)
	if err != nil {
		t.Fatal(err)
	}
	if err := sequoia.GenerateAll(store1, cfg); err != nil {
		t.Fatal(err)
	}
	store2, err := storage.OpenStore("", 32)
	if err != nil {
		t.Fatal(err)
	}
	if err := sequoia.GenerateJoinPair(store1, store2, cfg); err != nil {
		t.Fatal(err)
	}

	for _, site := range []struct {
		name, addr string
		store      *storage.Store
	}{
		{"site1", "dap1", store1},
		{"site2", "dap2", store2},
	} {
		l, err := network.Listen(site.addr)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { l.Close() })
		go dap.New(dap.Config{
			Site:         site.name,
			Driver:       &dap.StorageDriver{Store: site.store},
			IdleTimeout:  2 * time.Second,
			FrameTimeout: time.Second,
		}).Serve(l)
	}

	reg := ops.Builtins()
	cat := catalog.New(reg, catalog.NewRepositoryFromRegistry(reg))
	cat.AddSite(&catalog.Site{Name: "site1", Addr: "dap1"})
	cat.AddSite(&catalog.Site{Name: "site2", Addr: "dap2"})
	registerStoreTables(t, cat, store1, "site1", "Polygons", "Graphs", "Rasters", "Rasters1")
	registerStoreTables(t, cat, store2, "site2", "Rasters2")

	qcfg := Config{
		Cat:          cat,
		Dial:         network.Dial,
		Strategy:     core.StrategyAuto,
		QueryTimeout: 3 * time.Second,
		FrameTimeout: 400 * time.Millisecond,
		Retry: RetryPolicy{
			MaxAttempts: 4,
			BaseDelay:   5 * time.Millisecond,
			MaxDelay:    50 * time.Millisecond,
			Multiplier:  2,
			Jitter:      0.5,
			Budget:      8,
		},
	}
	if tune != nil {
		tune(&qcfg)
	}
	return &chaosHarness{srv: New(qcfg), network: network}
}

// executeWithin runs the query under a watchdog: exceeding the wall
// budget is a hang and fails the test immediately.
func (h *chaosHarness) executeWithin(t *testing.T, wall time.Duration, sql string) (*Result, error) {
	t.Helper()
	type outcome struct {
		res *Result
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := h.srv.Execute(sql)
		done <- outcome{res, err}
	}()
	select {
	case o := <-done:
		return o.res, o.err
	case <-time.After(wall):
		t.Fatalf("query %q hung for more than %v", sql, wall)
		return nil, nil
	}
}

func TestChaosFaultMatrix(t *testing.T) {
	cases := []struct {
		name   string
		target string // faulted link
		plan   *netsim.FaultPlan
		sql    string
		tune   func(*Config)
		// wantOK: the query must succeed (retries absorb the fault).
		// Otherwise it must fail with an error mentioning wantErr.
		wantOK  bool
		wantErr string
	}{
		{
			name:   "no-fault-baseline",
			target: "dap2",
			plan:   &netsim.FaultPlan{},
			sql:    joinQuery,
			wantOK: true,
		},
		{
			name:   "dial-refused-twice-then-recover",
			target: "dap2",
			plan:   &netsim.FaultPlan{RefuseDials: 2},
			sql:    joinQuery,
			wantOK: true,
		},
		{
			// Three consecutive refusals trip site2's breaker, so the
			// retry loop fails fast instead of burning its last attempt.
			name:    "dial-refused-forever",
			target:  "dap2",
			plan:    &netsim.FaultPlan{RefuseDials: 1 << 30},
			sql:     joinQuery,
			wantErr: "breaker open",
		},
		{
			name:   "handshake-conn-dies-then-recovers",
			target: "dap2",
			plan:   &netsim.FaultPlan{FailFirstConns: 1},
			sql:    joinQuery,
			wantOK: true,
		},
		{
			name:    "partition-mid-stream",
			target:  "dap1",
			plan:    &netsim.FaultPlan{Stall: true, StallAfterBytes: 8 << 10},
			sql:     streamQuery,
			wantErr: "stalled or dead",
		},
		{
			name:    "drop-mid-stream",
			target:  "dap1",
			plan:    &netsim.FaultPlan{DropAfterBytes: 8 << 10},
			sql:     streamQuery,
			wantErr: "",
		},
		{
			name:    "one-way-partition-from-start",
			target:  "dap2",
			plan:    &netsim.FaultPlan{PartitionSends: true},
			sql:     joinQuery,
			wantErr: "stalled or dead",
		},
		{
			name:   "latency-spikes-succeed",
			target: "dap1",
			plan:   &netsim.FaultPlan{ExtraLatency: 20 * time.Millisecond, SpikeEvery: 4},
			sql:    "SELECT time, band FROM Rasters LIMIT 5",
			wantOK: true,
		},
		{
			name:   "query-deadline-fires-before-frame-timeout",
			target: "dap1",
			plan:   &netsim.FaultPlan{Stall: true, StallAfterBytes: 8 << 10},
			sql:    streamQuery,
			tune: func(c *Config) {
				c.QueryTimeout = 500 * time.Millisecond
				c.FrameTimeout = 10 * time.Second
			},
			wantErr: "deadline exceeded",
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h := newChaosHarness(t, tc.tune)
			h.network.SetFault(tc.target, tc.plan)
			start := time.Now()
			res, err := h.executeWithin(t, 5*time.Second, tc.sql)
			wall := time.Since(start)
			if tc.wantOK {
				if err != nil {
					t.Fatalf("query should survive fault, got: %v", err)
				}
				if len(res.Rows) == 0 {
					t.Fatal("query succeeded but returned no rows")
				}
				return
			}
			if err == nil {
				t.Fatalf("query should fail under fault, succeeded with %d rows", len(res.Rows))
			}
			if wall >= 5*time.Second {
				t.Fatalf("failure took %v, not bounded by the deadline", wall)
			}
			if tc.wantErr != "" && !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q should mention %q", err, tc.wantErr)
			}
			t.Logf("failed cleanly in %v: %v", wall, err)
		})
	}
}

// TestChaosDropIsConnReset pins the error identity of an injected drop:
// callers can classify it with errors.Is, not string matching.
func TestChaosDropIsConnReset(t *testing.T) {
	h := newChaosHarness(t, nil)
	h.network.SetFault("dap1", &netsim.FaultPlan{DropAfterBytes: 8 << 10})
	_, err := h.executeWithin(t, 5*time.Second, streamQuery)
	if err == nil {
		t.Fatal("drop fault should fail the query")
	}
	if !errors.Is(err, syscall.ECONNRESET) && !errors.Is(err, netsim.ErrInjectedDrop) &&
		!strings.Contains(err.Error(), "EOF") {
		t.Fatalf("drop error should be classifiable, got %v", err)
	}
}

// TestChaosRecoveryAfterFailure verifies a failed query leaves no debris
// behind: the very next query on the same QPC succeeds.
func TestChaosRecoveryAfterFailure(t *testing.T) {
	h := newChaosHarness(t, nil)
	h.network.SetFault("dap1", &netsim.FaultPlan{Stall: true, StallAfterBytes: 8 << 10})
	if _, err := h.executeWithin(t, 5*time.Second, streamQuery); err == nil {
		t.Fatal("stalled query should fail")
	}
	h.network.SetFault("dap1", nil)
	res, err := h.executeWithin(t, 5*time.Second, "SELECT time, band FROM Rasters")
	if err != nil {
		t.Fatalf("QPC did not recover after a failed query: %v", err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("recovered query returned no rows")
	}
}

// TestChaosConcurrentQueriesUnderFault runs healthy and faulted queries
// concurrently: the faulted link must not poison unrelated queries.
func TestChaosConcurrentQueriesUnderFault(t *testing.T) {
	h := newChaosHarness(t, nil)
	h.network.SetFault("dap2", &netsim.FaultPlan{RefuseDials: 1 << 30})
	var wg sync.WaitGroup
	errs := make([]error, 6)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sql := "SELECT time, band FROM Rasters LIMIT 3" // site1 only
			if i%2 == 1 {
				sql = joinQuery // needs the dead site2
			}
			_, errs[i] = h.srv.Execute(sql)
		}(i)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("concurrent queries hung")
	}
	for i, err := range errs {
		if i%2 == 0 && err != nil {
			t.Errorf("healthy query %d failed: %v", i, err)
		}
		if i%2 == 1 && err == nil {
			t.Errorf("query %d against dead site should fail", i)
		}
	}
}
