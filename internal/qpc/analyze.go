package qpc

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"mocha/internal/core"
	"mocha/internal/obs"
	"mocha/internal/types"
)

// Analyze executes sql, discarding result rows, and returns the stats
// and assembled cross-site trace — the machinery behind EXPLAIN ANALYZE.
func (s *Server) Analyze(ctx context.Context, sql string) (*core.Plan, *QueryStats, *obs.Trace, error) {
	q, err := s.Prepare(sql)
	if err != nil {
		return nil, nil, nil, err
	}
	stats, trace, err := q.RunTraced(ctx, func(types.Tuple) error { return nil })
	if err != nil {
		return q.Plan, nil, trace, err
	}
	return q.Plan, stats, trace, nil
}

// ExplainAnalyze executes sql and renders the plan, the measured
// execution breakdown, and the per-fragment span timeline.
func (s *Server) ExplainAnalyze(ctx context.Context, sql string) (string, error) {
	plan, stats, trace, err := s.Analyze(ctx, sql)
	if err != nil {
		return "", err
	}
	return RenderAnalysis(plan, stats, trace), nil
}

// RenderAnalysis formats an EXPLAIN ANALYZE report: the optimizer's plan
// rendering followed by the measured time/volume breakdown and the
// cross-site span timeline.
func RenderAnalysis(plan *core.Plan, stats *QueryStats, trace *obs.Trace) string {
	var b strings.Builder
	b.WriteString(strings.TrimRight(core.Explain(plan), "\n"))
	b.WriteString("\n\n")
	fmt.Fprintf(&b, "executed: total %.1fms (plan %.1f, deploy %.1f, db %.1f, cpu %.1f, net %.1f, join %.1f, misc %.1f)\n",
		stats.TotalMS, stats.PlanMS, stats.DeployMS, stats.DBMS, stats.CPUMS,
		stats.NetMS, stats.JoinMS, stats.MiscMS)
	fmt.Fprintf(&b, "volumes: cvda %d B, cvdt %d B, cvrf %.4f, result %d tuples / %d B\n",
		stats.CVDA, stats.CVDT, stats.CVRF(), stats.ResultTuples, stats.ResultBytes)
	fmt.Fprintf(&b, "code shipping: %d classes / %d B shipped, %d cache hits\n",
		stats.CodeClassesShipped, stats.CodeBytesShipped, stats.CacheHits)
	if ops := renderOperators(trace); ops != "" {
		b.WriteString("\n")
		b.WriteString(ops)
	}
	b.WriteString("\n")
	b.WriteString(trace.Render())
	return b.String()
}

// renderOperators formats the per-operator execution breakdown from the
// trace's operator spans ("op:*"): rows pulled from children, rows
// produced, output batches, and self time (work in the operator itself,
// excluding its children), grouped by site. Empty when the trace holds
// no operator spans (e.g. a failed execution).
func renderOperators(trace *obs.Trace) string {
	spans := trace.Spans()
	var ops []obs.Span
	for _, s := range spans {
		if strings.HasPrefix(s.Name, obs.SpanOpPrefix) {
			ops = append(ops, s)
		}
	}
	if len(ops) == 0 {
		return ""
	}
	sort.SliceStable(ops, func(i, j int) bool {
		if ops[i].Site != ops[j].Site {
			return ops[i].Site < ops[j].Site
		}
		return ops[i].Name < ops[j].Name
	})
	var b strings.Builder
	b.WriteString("operators:\n")
	header := [7]string{"operator", "site", "rows in", "rows out", "batches", "self", "spilled"}
	widths := [7]int{}
	for i, h := range header {
		widths[i] = len(h)
	}
	rows := make([][7]string, 0, len(ops))
	for _, s := range ops {
		site := s.Site
		if site == "" {
			site = "qpc"
		}
		spilled := "-"
		if s.SpillBytes > 0 {
			spilled = fmt.Sprintf("%d B", s.SpillBytes)
		}
		row := [7]string{
			s.Name, site,
			fmt.Sprintf("%d", s.RowsIn),
			fmt.Sprintf("%d", s.Tuples),
			fmt.Sprintf("%d", s.Batches),
			fmt.Sprintf("%.1fms", float64(s.DurMicros)/1000),
			spilled,
		}
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
		rows = append(rows, row)
	}
	line := func(cells [7]string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(header)
	for _, row := range rows {
		line(row)
	}
	return b.String()
}
