package qpc

import (
	"context"
	"fmt"
	"strings"

	"mocha/internal/core"
	"mocha/internal/obs"
	"mocha/internal/types"
)

// Analyze executes sql, discarding result rows, and returns the stats
// and assembled cross-site trace — the machinery behind EXPLAIN ANALYZE.
func (s *Server) Analyze(ctx context.Context, sql string) (*core.Plan, *QueryStats, *obs.Trace, error) {
	q, err := s.Prepare(sql)
	if err != nil {
		return nil, nil, nil, err
	}
	stats, trace, err := q.RunTraced(ctx, func(types.Tuple) error { return nil })
	if err != nil {
		return q.Plan, nil, trace, err
	}
	return q.Plan, stats, trace, nil
}

// ExplainAnalyze executes sql and renders the plan, the measured
// execution breakdown, and the per-fragment span timeline.
func (s *Server) ExplainAnalyze(ctx context.Context, sql string) (string, error) {
	plan, stats, trace, err := s.Analyze(ctx, sql)
	if err != nil {
		return "", err
	}
	return RenderAnalysis(plan, stats, trace), nil
}

// RenderAnalysis formats an EXPLAIN ANALYZE report: the optimizer's plan
// rendering followed by the measured time/volume breakdown and the
// cross-site span timeline.
func RenderAnalysis(plan *core.Plan, stats *QueryStats, trace *obs.Trace) string {
	var b strings.Builder
	b.WriteString(strings.TrimRight(core.Explain(plan), "\n"))
	b.WriteString("\n\n")
	fmt.Fprintf(&b, "executed: total %.1fms (plan %.1f, deploy %.1f, db %.1f, cpu %.1f, net %.1f, join %.1f, misc %.1f)\n",
		stats.TotalMS, stats.PlanMS, stats.DeployMS, stats.DBMS, stats.CPUMS,
		stats.NetMS, stats.JoinMS, stats.MiscMS)
	fmt.Fprintf(&b, "volumes: cvda %d B, cvdt %d B, cvrf %.4f, result %d tuples / %d B\n",
		stats.CVDA, stats.CVDT, stats.CVRF(), stats.ResultTuples, stats.ResultBytes)
	fmt.Fprintf(&b, "code shipping: %d classes / %d B shipped, %d cache hits\n",
		stats.CodeClassesShipped, stats.CodeBytesShipped, stats.CacheHits)
	b.WriteString("\n")
	b.WriteString(trace.Render())
	return b.String()
}
