package qpc

import (
	"math"
	"strings"
	"testing"

	"mocha/internal/core"
)

// TestHashFractionDeterministic: routing is a pure function of the
// query ID, so the same query can never be re-routed mid-flight.
func TestHashFractionDeterministic(t *testing.T) {
	for _, qid := range []string{"q00000001-0001", "q00000001-0002", "x", ""} {
		if hashFraction(qid) != hashFraction(qid) {
			t.Fatalf("hashFraction(%q) unstable", qid)
		}
	}
}

// TestHashFractionSpread: over many IDs the routed share approximates
// the requested fraction — the canary really sees ~25% at 0.25.
func TestHashFractionSpread(t *testing.T) {
	const n = 20000
	counts := map[float64]int{0.1: 0, 0.25: 0, 0.5: 0}
	for i := 0; i < n; i++ {
		f := hashFraction(strings.Repeat("q", 1+i%7) + string(rune('a'+i%26)) + itoa(i))
		if f < 0 || f >= 1 {
			t.Fatalf("hashFraction out of [0,1): %v", f)
		}
		for frac := range counts {
			if f < frac {
				counts[frac]++
			}
		}
	}
	for frac, got := range counts {
		share := float64(got) / n
		if math.Abs(share-frac) > 0.03 {
			t.Errorf("fraction %.2f routed %.3f of queries", frac, share)
		}
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}

func TestPlanUsesClass(t *testing.T) {
	plan := &core.Plan{Fragments: []*core.Fragment{
		{Site: "a"},
		{Site: "b", Code: []core.CodeRef{{Name: "AvgEnergy", Checksum: "abc"}}},
	}}
	if !planUsesClass(plan, "avgenergy") {
		t.Error("shipped class not found")
	}
	if planUsesClass(plan, "clip") {
		t.Error("phantom class found")
	}
	if planUsesClass(&core.Plan{}, "avgenergy") {
		t.Error("empty plan ships code")
	}
}

func TestRolloutAbortedErrorRendering(t *testing.T) {
	e := &RolloutAbortedError{
		Class: "AvgEnergy", Tag: "v2", Digest: "feed",
		Reason:     "result digest divergence",
		SQL:        "SELECT AvgEnergy(image) FROM Rasters",
		WantDigest: "1111", GotDigest: "2222",
	}
	msg := e.Error()
	for _, want := range []string{"AvgEnergy@v2", "result digest divergence", "SELECT", "1111", "2222"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q missing %q", msg, want)
		}
	}
	e2 := &RolloutAbortedError{Class: "C", Tag: "t", Reason: "canary execution failed", CanaryErr: "trap: div by zero"}
	if !strings.Contains(e2.Error(), "div by zero") {
		t.Errorf("error %q missing canary error", e2.Error())
	}
}

func TestRolloutPolicyDefaults(t *testing.T) {
	p := RolloutPolicy{}.withDefaults()
	if p.MinSamples != 5 || p.LatencyFactor != 3.0 || p.PromoteAfter != 16 {
		t.Errorf("defaults = %+v", p)
	}
	// Explicit settings survive; negative PromoteAfter (never promote)
	// is preserved, not defaulted.
	p = RolloutPolicy{MinSamples: 2, LatencyFactor: 10, PromoteAfter: -1, MaxCanaryErrors: 3}.withDefaults()
	if p.MinSamples != 2 || p.LatencyFactor != 10 || p.PromoteAfter != -1 || p.MaxCanaryErrors != 3 {
		t.Errorf("explicit policy rewritten: %+v", p)
	}
}

func TestRolloutStateOracle(t *testing.T) {
	st := &rolloutState{Status: rolloutRunning, oracles: make(map[string]*oracleEntry)}
	st.recordOracleLocked("q1", runOutcome{digest: "aaa", micros: 100})
	if e := st.oracles["q1"]; e == nil || e.digest != "aaa" || e.unstable {
		t.Fatalf("oracle entry = %+v", st.oracles["q1"])
	}
	// Same digest again: stable, EWMA updates.
	st.recordOracleLocked("q1", runOutcome{digest: "aaa", micros: 200})
	if e := st.oracles["q1"]; e.unstable || e.runs != 2 {
		t.Fatalf("oracle entry after repeat = %+v", e)
	}
	// Conflicting digest: the SQL's output is nondeterministic; the
	// entry is poisoned so it can never condemn a canary.
	st.recordOracleLocked("q1", runOutcome{digest: "bbb", micros: 100})
	if e := st.oracles["q1"]; !e.unstable {
		t.Fatal("conflicting digests did not mark the oracle unstable")
	}
	// The cap bounds memory under hostile query diversity.
	for i := 0; i < 2*oracleCap; i++ {
		st.recordOracleLocked("sql-"+itoa(i), runOutcome{digest: "x", micros: 1})
	}
	if len(st.oracles) > oracleCap {
		t.Errorf("oracle map grew to %d (cap %d)", len(st.oracles), oracleCap)
	}
}
