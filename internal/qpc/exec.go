package qpc

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"mocha/internal/core"
	"mocha/internal/obs"
	"mocha/internal/types"
	"mocha/internal/wire"
)

// planExec drives one query execution: fragment deployment, the optional
// semi-join key exchange, remote streams, QPC-side joins and operators.
type planExec struct {
	srv   *Server
	plan  *core.Plan
	stats *QueryStats
	trace *obs.Trace

	// ctx and budget are the execution context and the shared per-query
	// retry pool, held here so mid-stream recovery (fragmentStream) can
	// retry its reconnects under the same limits as the setup phases.
	ctx    context.Context
	budget *retryBudget

	sessions []*dapSession
	readers  []*fragmentStream
	// activateOff[i] is reader i's activation offset on the trace
	// timeline, the start of its stream span.
	activateOff []int64
}

// errLimitReached aborts the pipeline once LIMIT rows were produced.
var errLimitReached = fmt.Errorf("qpc: limit reached")

func (e *planExec) run(ctx context.Context, emit func(types.Tuple) error) (err error) {
	// Every session of this query hangs off execCtx: when one fragment
	// fails, cancelling it immediately unblocks any frame I/O on the
	// surviving sessions so cleanup cannot hang on a sick link.
	execCtx, cancel := context.WithCancel(ctx)
	defer func() {
		if err != nil {
			cancel()
			// Salvage the measurements of fragments that did finish, so a
			// partially executed query still reports what it moved.
			for i, fs := range e.readers {
				if fs != nil && fs.EOS() != nil {
					if e.drainFragment(i, fs.r, true) == nil {
						e.srv.met.sessionsSalvaged.Inc()
					}
				}
			}
		}
		for _, ds := range e.sessions {
			if ds != nil {
				ds.close()
			}
		}
		cancel()
	}()

	// Phase 1: open sessions, validate code caches and ship classes to
	// all sites concurrently (all Misc/Deploy time). Dial, HELLO and the
	// code exchange are idempotent, so transport failures here retry on
	// a fresh connection under the policy's shared per-query budget.
	policy := e.srv.cfg.Retry
	budget := newRetryBudget(policy)
	budget.retries = e.srv.met.retries
	budget.exhausted = e.srv.met.retryExhausted
	e.ctx = execCtx
	e.budget = budget
	err = timedPhase(e.stats, func() error {
		e.sessions = make([]*dapSession, len(e.plan.Fragments))
		partials := make([]QueryStats, len(e.plan.Fragments))
		errs := make([]error, len(e.plan.Fragments))
		var wg sync.WaitGroup
		for i := range e.plan.Fragments {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				frag := e.plan.Fragments[i]
				what := fmt.Sprintf("qpc: session setup at %s", frag.Site)
				errs[i] = retryTransient(execCtx, policy, budget, e.srv.health, frag.Site, what, func() error {
					// A retried attempt starts its accounting from scratch:
					// the aborted attempt's cache checks and shipped classes
					// must not inflate the query's counters (the shipped
					// bytes it wasted go to a process metric instead).
					if partials[i] != (QueryStats{}) {
						e.srv.met.wastedCodeBytes.Add(int64(partials[i].CodeBytesShipped))
						partials[i] = QueryStats{}
					}
					span := e.trace.Begin("deploy", frag.Site)
					ds, err := e.srv.openSession(execCtx, frag.Site, e.trace.ID)
					if err != nil {
						return err
					}
					ds.openOff = e.trace.Since(time.Now())
					if err := e.srv.deployCode(ds, frag.Code, &partials[i]); err != nil {
						ds.close()
						return err
					}
					span.AddBytes(0, 0, int64(partials[i].CodeBytesShipped))
					span.End()
					e.sessions[i] = ds
					return nil
				})
			}(i)
		}
		wg.Wait()
		for i := range errs {
			e.stats.mergeCodeShipping(&partials[i])
			if errs[i] != nil {
				return errs[i]
			}
		}
		return nil
	})
	if err != nil {
		return err
	}

	// Phase 2: semi-join key exchange (section 5.4's 2-way semi-join).
	semiFrags := 0
	for _, f := range e.plan.Fragments {
		if f.SemiJoinCol >= 0 {
			semiFrags++
		}
	}
	if semiFrags > 0 {
		if semiFrags != 2 || len(e.plan.Fragments) != 2 {
			return fmt.Errorf("qpc: semi-join requires exactly two participating fragments")
		}
		// Both key projections run concurrently, one per site.
		var keySets [2][]types.Tuple
		var keyStats [2]QueryStats
		var keyES [2]*wire.ExecStats
		var keyErrs [2]error
		var kwg sync.WaitGroup
		for i := 0; i < 2; i++ {
			kwg.Add(1)
			go func(i int) {
				defer kwg.Done()
				keySets[i], keyES[i], keyErrs[i] = e.srv.runKeyPhase(e.sessions[i], e.plan.Fragments[i], &keyStats[i])
			}(i)
		}
		kwg.Wait()
		for i := 0; i < 2; i++ {
			e.stats.mergeTimesAndVolumes(&keyStats[i])
			if keyES[i] != nil {
				e.recordRemoteSpans("keys:recv", e.sessions[i], keyES[i], e.sessions[i].openOff)
			}
			if keyErrs[i] != nil {
				return fmt.Errorf("qpc: key phase at %s: %w", e.plan.Fragments[i].Site, keyErrs[i])
			}
		}
		keys0, keys1 := keySets[0], keySets[1]
		common := intersectKeys(keys0, keys1)
		e.srv.cfg.Logf("qpc: semi-join keys: %d ∩ %d = %d", len(keys0), len(keys1), len(common))
		for i, ds := range e.sessions {
			if err := ds.deployPlan(e.plan.Fragments[i]); err != nil {
				return err
			}
			span := e.trace.Begin("keys:send", ds.site)
			keyBytes, err := ds.sendSemiJoinKeys(common, e.stats)
			if err != nil {
				return err
			}
			span.AddBytes(keyBytes, 0, 0)
			span.AddTuples(int64(len(common)))
			span.End()
		}
	} else {
		err := timedPhase(e.stats, func() error {
			for i, ds := range e.sessions {
				if err := ds.deployPlan(e.plan.Fragments[i]); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return err
		}
	}

	// Phase 3: activate every fragment; streams begin. Unless resume is
	// disabled, each stream gets an ID derived from the trace ID so a
	// broken connection can be resumed against the DAP's replay window.
	for i, ds := range e.sessions {
		frag := e.plan.Fragments[i]
		streamID := ""
		if !e.srv.cfg.DisableResume {
			streamID = fmt.Sprintf("%s/%d", e.trace.ID, i)
		}
		r, err := ds.activateStream(frag.OutSchema, streamID)
		if err != nil {
			return err
		}
		e.readers = append(e.readers, &fragmentStream{
			e: e, idx: i, frag: frag, id: streamID, ds: ds, r: r,
		})
		e.activateOff = append(e.activateOff, e.trace.Since(time.Now()))
	}

	// Phase 4: QPC pipeline.
	span := e.trace.Begin("pipeline", "")
	perr := e.pipeline(execCtx, emit)
	span.End()
	if perr != nil && perr != errLimitReached {
		return perr
	}

	// Phase 5: drain stats from every fragment stream.
	for i, r := range e.readers {
		// Under LIMIT the stream may not be fully consumed; skip stats
		// for unfinished readers rather than block.
		if r.EOS() == nil {
			for {
				tup, err := r.Next()
				if err != nil {
					return err
				}
				if tup == nil {
					break
				}
			}
		}
		if err := e.drainFragment(i, r.r, true); err != nil {
			return fmt.Errorf("qpc: stats from fragment %d: %w", i, err)
		}
	}
	return nil
}

// drainFragment folds one fragment stream's EOS report into the query
// stats and records its trace spans: a QPC-side stream span carrying the
// fragment's wire volume, plus the DAP's own spans re-anchored onto the
// query timeline.
func (e *planExec) drainFragment(i int, r *wire.BatchReader, countVolumes bool) error {
	es, err := drainStats(r, e.stats, countVolumes)
	if err != nil {
		return err
	}
	e.recordRemoteSpans("stream", e.sessions[i], es, e.activateOff[i])
	return nil
}

// recordRemoteSpans records the QPC-side span for a remote phase and
// imports the DAP's spans from its EOS report. The QPC-side span alone
// carries the phase's network volume; imported spans have their NetBytes
// cleared so summing the trace's NetBytes reproduces exactly the CVDT
// the stats accumulated — each wire byte is counted by one span.
func (e *planExec) recordRemoteSpans(name string, ds *dapSession, es *wire.ExecStats, startOff int64) {
	dur := e.trace.Since(time.Now()) - startOff
	if dur < 0 {
		dur = 0
	}
	e.trace.Add(obs.Span{
		Name: name, Site: ds.site,
		StartMicros: startOff, DurMicros: dur,
		NetBytes: es.BytesSent, Tuples: es.TuplesSent,
	})
	for _, s := range wire.SpansFromXML(es.Spans) {
		s.StartMicros += ds.openOff
		s.NetBytes = 0
		e.trace.Add(s)
	}
}

// pipeline consumes the remote streams and applies QPC-side operators.
func (e *planExec) pipeline(ctx context.Context, emit func(types.Tuple) error) error {
	binder := core.NativeBinder{Reg: e.srv.cfg.Cat.Ops()}
	memo := core.NewMemo()

	preds := make([]core.EvalFn, len(e.plan.Predicates))
	for i, p := range e.plan.Predicates {
		fn, err := core.CompileExprMemo(p, binder, memo)
		if err != nil {
			return err
		}
		preds[i] = fn
	}
	projs := make([]core.EvalFn, len(e.plan.Projections))
	for i, o := range e.plan.Projections {
		fn, err := core.CompileExprMemo(o.Expr, binder, memo)
		if err != nil {
			return err
		}
		projs[i] = fn
	}

	// Build hash tables for all join steps (right sides materialized).
	type hashTable struct {
		rightCol int
		rows     map[uint64][]types.Tuple
	}
	tables := make([]hashTable, len(e.plan.Joins))
	for i, step := range e.plan.Joins {
		buildStart := time.Now()
		ht := hashTable{rightCol: step.RightCol, rows: map[uint64][]types.Tuple{}}
		r := e.readers[step.RightFrag]
		waitBefore := r.RecvWait()
		for {
			tup, err := r.Next()
			if err != nil {
				return err
			}
			if tup == nil {
				break
			}
			k, ok := tup[step.RightCol].(types.Small)
			if !ok {
				return fmt.Errorf("qpc: join key of kind %v", tup[step.RightCol].Kind())
			}
			ht.rows[k.Hash()] = append(ht.rows[k.Hash()], tup)
		}
		tables[i] = ht
		// Build time excludes time blocked on the network (that wall
		// time is already reported as the DAP's send time).
		build := time.Since(buildStart) - (r.RecvWait() - waitBefore)
		if build > 0 {
			e.stats.JoinMS += float64(build.Microseconds()) / 1000
		}
	}

	// Aggregation state (when aggregation runs at the QPC).
	type qpcGroup struct {
		keys types.Tuple
		aggs []core.AggFn
	}
	var (
		groups   map[string]*qpcGroup
		groupOrd []string
		aggArgs  [][]core.EvalFn
	)
	if len(e.plan.Aggregates) > 0 {
		groups = map[string]*qpcGroup{}
		for _, spec := range e.plan.Aggregates {
			fns := make([]core.EvalFn, len(spec.Args))
			for j, a := range spec.Args {
				fn, err := core.CompileExprMemo(a, binder, memo)
				if err != nil {
					return err
				}
				fns[j] = fn
			}
			aggArgs = append(aggArgs, fns)
		}
	}

	var ordered []types.Tuple
	emitted := int64(0)
	needSort := len(e.plan.OrderBy) > 0

	project := func(in types.Tuple) error {
		if groups != nil {
			// Aggregated rows are fresh inputs; per-tuple sharing from
			// the probe phase no longer applies.
			memo.Reset()
		}
		out := make(types.Tuple, len(projs))
		for i, p := range projs {
			v, err := p(in)
			if err != nil {
				return fmt.Errorf("qpc: projection %q: %w", e.plan.Projections[i].Name, err)
			}
			out[i] = v
		}
		if needSort {
			ordered = append(ordered, out)
			return nil
		}
		e.stats.ResultTuples++
		e.stats.ResultBytes += int64(out.WireSize())
		if err := emit(out); err != nil {
			return err
		}
		emitted++
		if e.plan.Limit >= 0 && emitted >= int64(e.plan.Limit) {
			return errLimitReached
		}
		return nil
	}

	// consume processes one combined row through filter → aggregate or
	// project.
	consume := func(row types.Tuple) error {
		memo.Reset()
		cpuStart := time.Now()
		defer func() {
			e.stats.CPUMS += float64(time.Since(cpuStart).Microseconds()) / 1000
		}()
		for _, p := range preds {
			ok, err := core.EvalPredicate(p, row)
			if err != nil {
				return err
			}
			if !ok {
				return nil
			}
		}
		if groups != nil {
			keys := make(types.Tuple, len(e.plan.GroupBy))
			var keyBuf []byte
			for i, g := range e.plan.GroupBy {
				keys[i] = row[g]
				keyBuf = row[g].AppendTo(keyBuf)
			}
			gk := string(keyBuf)
			grp, ok := groups[gk]
			if !ok {
				grp = &qpcGroup{keys: keys}
				for _, spec := range e.plan.Aggregates {
					agg, err := binder.BindAggregate(spec.Func, spec.Ret)
					if err != nil {
						return err
					}
					if err := agg.Reset(); err != nil {
						return err
					}
					grp.aggs = append(grp.aggs, agg)
				}
				groups[gk] = grp
				groupOrd = append(groupOrd, gk)
			}
			for i := range e.plan.Aggregates {
				args := make([]types.Object, len(aggArgs[i]))
				for j, fn := range aggArgs[i] {
					v, err := fn(row)
					if err != nil {
						return err
					}
					args[j] = v
				}
				if err := grp.aggs[i].Update(args); err != nil {
					return err
				}
			}
			return nil
		}
		return project(row)
	}

	// Probe pipeline: fragment 0's stream joined through each hash table.
	left := e.readers[0]
	for probed := 0; ; probed++ {
		// The probe loop is pure QPC-side compute between frames; check
		// the deadline periodically so a cancelled query stops promptly
		// even when the remote streams keep delivering.
		if probed%256 == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		tup, err := left.Next()
		if err != nil {
			return err
		}
		if tup == nil {
			break
		}
		rows := []types.Tuple{tup}
		for i, step := range e.plan.Joins {
			probeStart := time.Now()
			var next []types.Tuple
			for _, lrow := range rows {
				k, ok := lrow[step.LeftCol].(types.Small)
				if !ok {
					return fmt.Errorf("qpc: join key of kind %v", lrow[step.LeftCol].Kind())
				}
				for _, rrow := range tables[i].rows[k.Hash()] {
					if k.Equal(rrow[tables[i].rightCol]) {
						joined := make(types.Tuple, 0, len(lrow)+len(rrow))
						joined = append(joined, lrow...)
						joined = append(joined, rrow...)
						next = append(next, joined)
					}
				}
			}
			rows = next
			e.stats.JoinMS += float64(time.Since(probeStart).Microseconds()) / 1000
			if len(rows) == 0 {
				break
			}
		}
		for _, row := range rows {
			if err := consume(row); err != nil {
				return err
			}
		}
	}

	// Emit aggregation results.
	if groups != nil {
		sort.Strings(groupOrd)
		for _, gk := range groupOrd {
			grp := groups[gk]
			row := make(types.Tuple, 0, len(grp.keys)+len(grp.aggs))
			row = append(row, grp.keys...)
			for _, agg := range grp.aggs {
				v, err := agg.Summarize()
				if err != nil {
					return err
				}
				row = append(row, v)
			}
			if err := project(row); err != nil {
				return err
			}
		}
	}

	// Ordered output.
	if needSort {
		if err := sortRows(ordered, e.plan.OrderBy); err != nil {
			return err
		}
		if e.plan.Limit >= 0 && len(ordered) > e.plan.Limit {
			ordered = ordered[:e.plan.Limit]
		}
		for _, row := range ordered {
			e.stats.ResultTuples++
			e.stats.ResultBytes += int64(row.WireSize())
			if err := emit(row); err != nil {
				return err
			}
		}
	}
	return nil
}
