package qpc

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"

	"mocha/internal/core"
	"mocha/internal/exec"
	"mocha/internal/obs"
	"mocha/internal/types"
	"mocha/internal/wire"
)

// planExec drives one query execution: fragment deployment, the optional
// semi-join key exchange, remote streams, QPC-side joins and operators.
type planExec struct {
	srv   *Server
	plan  *core.Plan
	stats *QueryStats
	trace *obs.Trace

	// ctx and budget are the execution context and the shared per-query
	// retry pool, held here so mid-stream recovery (fragmentStream) can
	// retry its reconnects under the same limits as the setup phases.
	ctx    context.Context
	budget *retryBudget

	// overrides maps a lower-cased class name to the code ref this run
	// must ship instead of the plan's (canary routing). Applied to the
	// built units before deployment; nil means run the plan as prepared.
	overrides map[string]core.CodeRef

	// units are the physical activations from the exec seam's site
	// binding: one per fragment for unpartitioned plans, one per
	// surviving partition for scattered fragments. sessions, readers and
	// activateOff are indexed by unit.
	units    []*exec.Unit
	sessions []*dapSession
	readers  []*fragmentStream
	// activateOff[i] is reader i's activation offset on the trace
	// timeline, the start of its stream span.
	activateOff []int64
}

func (e *planExec) run(ctx context.Context, emit func(types.Tuple) error) (err error) {
	// Admission: under a memory budget, reserve the plan's static
	// scratch — the verifier-derived operand-stack + frame bound of
	// every shipped class, stamped in the code refs — before any setup
	// work. A query whose shipped code cannot even frame up within the
	// budget fails here with a typed OverBudgetError instead of
	// discovering the shortfall mid-query; the reservation is held for
	// the query's lifetime so spillable operators size their grants
	// against what is genuinely left.
	if e.srv.gov != nil {
		if need := exec.StaticScratchBytes(e.plan, e.overrides); need > 0 {
			grant := e.srv.gov.Grant("admission:static-scratch")
			if aerr := grant.Acquire(ctx, need); aerr != nil {
				grant.Close()
				return fmt.Errorf("admission: static scratch reservation: %w", aerr)
			}
			defer grant.Close()
		}
	}

	// Every session of this query hangs off execCtx: when one fragment
	// fails, cancelling it immediately unblocks any frame I/O on the
	// surviving sessions so cleanup cannot hang on a sick link.
	execCtx, cancel := context.WithCancel(ctx)
	defer func() {
		if err != nil {
			cancel()
			// Salvage the measurements of fragments that did finish, so a
			// partially executed query still reports what it moved.
			for i, fs := range e.readers {
				if fs != nil && fs.EOS() != nil {
					if e.drainFragment(i, fs.r, true) == nil {
						e.srv.met.sessionsSalvaged.Inc()
					}
				}
			}
		}
		for _, ds := range e.sessions {
			if ds != nil {
				ds.close()
			}
		}
		cancel()
	}()

	// Phase 1: open sessions, validate code caches and ship classes to
	// all sites concurrently (all Misc/Deploy time). Dial, HELLO and the
	// code exchange are idempotent, so transport failures here retry on
	// a fresh connection under the policy's shared per-query budget.
	policy := e.srv.cfg.Retry
	budget := newRetryBudget(policy)
	budget.retries = e.srv.met.retries
	budget.exhausted = e.srv.met.retryExhausted
	e.ctx = execCtx
	e.budget = budget
	err = timedPhase(e.stats, func() error {
		sp := exec.BindPlan(e.plan, e.srv.health.PickReplica)
		sp.ApplyOverrides(e.overrides)
		e.units = sp.Units
		e.sessions = make([]*dapSession, len(e.units))
		partials := make([]QueryStats, len(e.units))
		errs := make([]error, len(e.units))
		var wg sync.WaitGroup
		for i := range e.units {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				errs[i] = e.setupUnit(execCtx, i, &partials[i])
			}(i)
		}
		wg.Wait()
		for i := range errs {
			e.stats.mergeCodeShipping(&partials[i])
			if errs[i] != nil {
				return errs[i]
			}
		}
		return nil
	})
	if err != nil {
		return err
	}

	// Phase 2: semi-join key exchange (section 5.4's 2-way semi-join).
	semiFrags := len(exec.SemiJoinParticipants(e.plan))
	if semiFrags > 0 {
		if semiFrags != 2 || len(e.plan.Fragments) != 2 {
			return fmt.Errorf("qpc: semi-join requires exactly two participating fragments")
		}
		// Both key projections run concurrently, one per site.
		var keySets [2][]types.Tuple
		var keyStats [2]QueryStats
		var keyES [2]*wire.ExecStats
		var keyErrs [2]error
		var kwg sync.WaitGroup
		for i := 0; i < 2; i++ {
			kwg.Add(1)
			go func(i int) {
				defer kwg.Done()
				keySets[i], keyES[i], keyErrs[i] = e.srv.runKeyPhase(e.sessions[i], e.units[i].Frag, &keyStats[i])
			}(i)
		}
		kwg.Wait()
		for i := 0; i < 2; i++ {
			e.stats.mergeTimesAndVolumes(&keyStats[i])
			if keyES[i] != nil {
				e.recordRemoteSpans("keys:recv", e.sessions[i], keyES[i], e.sessions[i].openOff)
			}
			if keyErrs[i] != nil {
				return fmt.Errorf("qpc: key phase at %s: %w", e.units[i].Frag.Site, keyErrs[i])
			}
		}
		keys0, keys1 := keySets[0], keySets[1]
		common := intersectKeys(keys0, keys1)
		e.srv.cfg.Logf("qpc: semi-join keys: %d ∩ %d = %d", len(keys0), len(keys1), len(common))
		for i, ds := range e.sessions {
			if err := ds.deployPlan(e.units[i].Frag); err != nil {
				return err
			}
			span := e.trace.Begin("keys:send", ds.site)
			keyBytes, err := ds.sendSemiJoinKeys(common, e.stats)
			if err != nil {
				return err
			}
			span.AddBytes(keyBytes, 0, 0)
			span.AddTuples(int64(len(common)))
			span.End()
		}
	} else {
		err := timedPhase(e.stats, func() error {
			for i, ds := range e.sessions {
				if err := ds.deployPlan(e.units[i].Frag); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return err
		}
	}

	// Phase 3: activate every unit; streams begin. Unless resume is
	// disabled, each stream gets an ID derived from the trace ID so a
	// broken connection can be resumed against the DAP's replay window.
	// Scattered activations carry their shard coordinates, which the DAP
	// echoes in its EOS stats for provenance checking.
	for i, ds := range e.sessions {
		u := e.units[i]
		streamID := ""
		if !e.srv.cfg.DisableResume {
			streamID = fmt.Sprintf("%s/%d", e.trace.ID, i)
		}
		r, err := ds.activatePart(u.Frag.OutSchema, streamID, u.Part, u.Of)
		if err != nil {
			return err
		}
		e.readers = append(e.readers, &fragmentStream{
			e: e, idx: i, frag: u.Frag, id: streamID, ds: ds, r: r, unit: u,
		})
		e.activateOff = append(e.activateOff, e.trace.Since(time.Now()))
	}

	// Phase 4: lower the plan's QPC-side work (joins, predicates,
	// aggregation, projection, ordering, limit) onto the fragment streams
	// and run the shared operator tree: hash-join build sides build
	// concurrently while bounded prefetchers overlap compute with network
	// receive (serial under Tuning.Serial). On error the execution
	// context is cancelled before the tree closes, so goroutine joins
	// don't drain healthy streams of an already-failed query.
	span := e.trace.Begin("pipeline", "")
	pipeOff := e.trace.Since(time.Now())
	binder := core.NativeBinder{Reg: e.srv.cfg.Cat.Ops()}
	// Feeds group by plan fragment: a scattered fragment contributes one
	// feed per surviving partition (unioned by a Gather in partition
	// order); a fully pruned fragment contributes none and lowers to an
	// empty stream.
	pulls := make([][]exec.PullFunc, len(e.plan.Fragments))
	for i, fs := range e.readers {
		fi := e.units[i].FragIdx
		pulls[fi] = append(pulls[fi], fs.Next)
	}
	countEmit := func(t types.Tuple) error {
		e.stats.ResultTuples++
		e.stats.ResultBytes += int64(t.WireSize())
		return emit(t)
	}
	tree, perr := exec.LowerPlan(e.plan, binder, pulls, countEmit, e.srv.cfg.Exec, e.srv.gov)
	if perr == nil {
		perr = exec.Run(execCtx, tree, func(error) { cancel() })
		e.foldTree(tree, pipeOff)
	}
	span.End()
	if perr != nil {
		return perr
	}

	// Phase 5: drain stats from every fragment stream.
	for i, r := range e.readers {
		// Under LIMIT the stream may not be fully consumed; skip stats
		// for unfinished readers rather than block.
		if r.EOS() == nil {
			for {
				tup, err := r.Next()
				if err != nil {
					return err
				}
				if tup == nil {
					break
				}
			}
		}
		if err := e.drainFragment(i, r.r, true); err != nil {
			return fmt.Errorf("qpc: stats from fragment %d: %w", i, err)
		}
	}
	return nil
}

// setupUnit opens unit i's session, validates the site's code cache and
// ships missing classes, retrying transient failures under the shared
// policy. A partitioned unit that exhausts its chosen replica walks the
// rest of its replica ladder (each hop is a replica failover) before
// giving up with a typed partition-unavailable error.
func (e *planExec) setupUnit(execCtx context.Context, i int, partial *QueryStats) error {
	u := e.units[i]
	var lastErr error
	for ci, site := range u.Replicas {
		if ci > 0 {
			if execCtx.Err() != nil {
				break
			}
			u.Frag.Site = site
			e.srv.met.replicaFailovers.Inc()
			e.srv.cfg.Logf("qpc: partition %d of %s failing over setup from %s to %s",
				u.Part, e.plan.Fragments[u.FragIdx].Table, u.Replicas[ci-1], site)
		}
		what := fmt.Sprintf("qpc: session setup at %s", site)
		err := retryTransient(execCtx, e.srv.cfg.Retry, e.budget, e.srv.health, site, what, func() error {
			// A retried attempt starts its accounting from scratch:
			// the aborted attempt's cache checks and shipped classes
			// must not inflate the query's counters (the shipped
			// bytes it wasted go to a process metric instead).
			if *partial != (QueryStats{}) {
				e.srv.met.wastedCodeBytes.Add(int64(partial.CodeBytesShipped))
				*partial = QueryStats{}
			}
			span := e.trace.Begin("deploy", site)
			ds, err := e.srv.openSession(execCtx, site, e.trace.ID)
			if err != nil {
				return err
			}
			ds.openOff = e.trace.Since(time.Now())
			if err := e.srv.deployCode(ds, u.Frag.Code, partial); err != nil {
				ds.close()
				return err
			}
			span.AddBytes(0, 0, int64(partial.CodeBytesShipped))
			span.End()
			e.sessions[i] = ds
			return nil
		})
		if err == nil {
			return nil
		}
		lastErr = err
	}
	if u.Of > 0 {
		return &PartitionUnavailableError{
			Table: e.plan.Fragments[u.FragIdx].Table,
			Part:  u.Part, Sites: u.Replicas, Last: lastErr,
		}
	}
	return lastErr
}

// drainFragment folds one unit stream's EOS report into the query
// stats and records its trace spans: a QPC-side stream span carrying the
// fragment's wire volume, plus the DAP's own spans re-anchored onto the
// query timeline. A scattered unit's report must echo the shard
// coordinates its activation carried — a mismatch means the gather
// would silently union the wrong partition.
func (e *planExec) drainFragment(i int, r *wire.BatchReader, countVolumes bool) error {
	es, err := drainStats(r, e.stats, countVolumes)
	if err != nil {
		return err
	}
	if u := e.units[i]; u.Of > 0 && (es.Part != u.Part || es.Of != u.Of) {
		return fmt.Errorf("qpc: stream from %s reported shard %d/%d, activated as %d/%d",
			es.Site, es.Part, es.Of, u.Part, u.Of)
	}
	e.recordRemoteSpans("stream", e.sessions[i], es, e.activateOff[i])
	return nil
}

// recordRemoteSpans records the QPC-side span for a remote phase and
// imports the DAP's spans from its EOS report. The QPC-side span alone
// carries the phase's network volume; imported spans have their NetBytes
// cleared so summing the trace's NetBytes reproduces exactly the CVDT
// the stats accumulated — each wire byte is counted by one span.
func (e *planExec) recordRemoteSpans(name string, ds *dapSession, es *wire.ExecStats, startOff int64) {
	dur := e.trace.Since(time.Now()) - startOff
	if dur < 0 {
		dur = 0
	}
	e.trace.Add(obs.Span{
		Name: name, Site: ds.site,
		StartMicros: startOff, DurMicros: dur,
		NetBytes: es.BytesSent, Tuples: es.TuplesSent,
	})
	for _, s := range wire.SpansFromXML(es.Spans) {
		s.StartMicros += ds.openOff
		s.NetBytes = 0
		e.trace.Add(s)
	}
}

// foldTree folds the finished tree's per-operator accounting into the
// query stats and records one trace span per operator. Join self time
// (build inserts + probes) goes to JoinMS; evaluation operators go to
// CPUMS; source, prefetch and gather self time is network wait, already
// reported as the DAPs' send time. Operator spans never carry NetBytes, so the
// trace's span-sum == CVDT invariant is preserved by construction.
func (e *planExec) foldTree(tree *exec.Tree, startOff int64) {
	for _, op := range tree.Ops {
		st := op.Stats()
		ms := float64(st.Self.Microseconds()) / 1000
		switch {
		case strings.HasPrefix(st.Name, obs.OpHashJoin):
			e.stats.JoinMS += ms
		case strings.HasPrefix(st.Name, obs.OpRemote), strings.HasPrefix(st.Name, obs.OpPrefetch),
			strings.HasPrefix(st.Name, obs.OpGather):
		default:
			e.stats.CPUMS += ms
		}
		e.trace.Add(obs.Span{
			Name: st.Name, StartMicros: startOff,
			DurMicros: st.Self.Microseconds(),
			Tuples:    st.RowsOut, RowsIn: st.RowsIn, Batches: st.Batches,
			SpillBytes: st.SpillBytes,
		})
		addSpillSpan(e.trace, st, startOff)
	}
}

// addSpillSpan records the spill pseudo-span for an operator that
// overflowed its memory grant: Tuples = spilled tuples, Batches = runs
// written, SpillBytes = run payload bytes.
func addSpillSpan(tr *obs.Trace, st *exec.OpStats, startOff int64) {
	if st.Spills == 0 {
		return
	}
	name := obs.OpSpillJoin
	if strings.HasPrefix(st.Name, obs.OpHashAgg) {
		name = obs.OpSpillAgg
	}
	tr.Add(obs.Span{
		Name: name, StartMicros: startOff,
		Tuples: st.SpillTuples, Batches: st.Spills, SpillBytes: st.SpillBytes,
	})
}
