package qpc

import (
	"fmt"
	"net"
	"strings"
	"testing"

	"mocha/internal/catalog"
	"mocha/internal/core"
	"mocha/internal/dap"
	"mocha/internal/netsim"
	"mocha/internal/ops"
	"mocha/internal/sequoia"
	"mocha/internal/storage"
	"mocha/internal/types"
)

// testQPC wires a QPC to one in-memory DAP with tiny Sequoia data.
func testQPC(t *testing.T, strategy core.Strategy) *Server {
	t.Helper()
	network := netsim.NewNetwork(nil)
	store, err := storage.OpenStore("", 32)
	if err != nil {
		t.Fatal(err)
	}
	cfg := sequoia.TestScale()
	if err := sequoia.GenerateAll(store, cfg); err != nil {
		t.Fatal(err)
	}
	l, err := network.Listen("dap1")
	if err != nil {
		t.Fatal(err)
	}
	go dap.New(dap.Config{Site: "site1", Driver: &dap.StorageDriver{Store: store}}).Serve(l)
	t.Cleanup(func() { l.Close() })

	reg := ops.Builtins()
	cat := catalog.New(reg, catalog.NewRepositoryFromRegistry(reg))
	cat.AddSite(&catalog.Site{Name: "site1", Addr: "dap1"})
	registerStoreTables(t, cat, store, "site1", "Polygons", "Graphs", "Rasters")
	return New(Config{Cat: cat, Dial: network.Dial, Strategy: strategy})
}

// registerStoreTables scans each named table of the store and registers
// it in the catalog with measured statistics.
func registerStoreTables(t *testing.T, cat *catalog.Catalog, store *storage.Store, site string, names ...string) {
	t.Helper()
	for _, name := range names {
		tbl, _ := store.Table(name)
		stats := catalog.TableStats{}
		it, _ := tbl.Scan()
		sums := make([]int64, tbl.Schema().Arity())
		for {
			tup, _, err := it.Next()
			if err != nil {
				t.Fatal(err)
			}
			if tup == nil {
				break
			}
			stats.RowCount++
			for i, v := range tup {
				sums[i] += int64(v.WireSize())
			}
		}
		for i, c := range tbl.Schema().Columns {
			stats.Columns = append(stats.Columns, catalog.ColumnStats{
				Name: c.Name, AvgBytes: int(sums[i] / stats.RowCount),
			})
		}
		if err := cat.AddTable(&catalog.TableDef{
			Name: name, URI: "mocha://" + site + "/" + name, Site: site,
			Schema: tbl.Schema(), Stats: stats,
		}); err != nil {
			t.Fatal(err)
		}
	}
}

func TestExecuteSimpleProjection(t *testing.T) {
	s := testQPC(t, core.StrategyAuto)
	res, err := s.Execute("SELECT time, band FROM Rasters")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no rows")
	}
	if res.Stats.CVDA == 0 || res.Stats.CVDT == 0 || res.Stats.TotalMS <= 0 {
		t.Errorf("stats incomplete: %+v", res.Stats)
	}
	if res.Stats.ResultTuples != int64(len(res.Rows)) {
		t.Errorf("ResultTuples = %d, rows = %d", res.Stats.ResultTuples, len(res.Rows))
	}
}

func TestExecuteArithmeticAndLimit(t *testing.T) {
	s := testQPC(t, core.StrategyAuto)
	res, err := s.Execute("SELECT time * 2 + band FROM Rasters WHERE band < 2 LIMIT 3")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
}

func TestExecuteOrderByDesc(t *testing.T) {
	s := testQPC(t, core.StrategyAuto)
	res, err := s.Execute("SELECT name FROM Graphs ORDER BY name DESC LIMIT 10")
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i-1][0].(types.String_) < res.Rows[i][0].(types.String_) {
			t.Fatal("DESC order violated")
		}
	}
}

func TestPrepareErrors(t *testing.T) {
	s := testQPC(t, core.StrategyAuto)
	for _, sql := range []string{
		"not sql at all",
		"SELECT x FROM Rasters",
		"SELECT time FROM Missing",
	} {
		if _, err := s.Prepare(sql); err == nil {
			t.Errorf("Prepare(%q) should fail", sql)
		}
	}
}

func TestUnknownSiteDial(t *testing.T) {
	s := testQPC(t, core.StrategyAuto)
	// Sabotage the catalog: point the table at a dead site.
	s.cfg.Cat.AddSite(&catalog.Site{Name: "ghost", Addr: "nowhere"})
	s.cfg.Cat.AddTable(&catalog.TableDef{
		Name: "Ghostly", URI: "x", Site: "ghost",
		Schema: types.NewSchema(types.Column{Name: "a", Kind: types.KindInt}),
		Stats:  catalog.TableStats{RowCount: 1, Columns: []catalog.ColumnStats{{Name: "a", AvgBytes: 4}}},
	})
	_, err := s.Execute("SELECT a FROM Ghostly")
	if err == nil || !strings.Contains(err.Error(), "dial") {
		t.Errorf("expected dial error, got %v", err)
	}
}

func TestSortRows(t *testing.T) {
	rows := []types.Tuple{
		{types.Int(2), types.String_("b")},
		{types.Int(1), types.String_("c")},
		{types.Int(2), types.String_("a")},
	}
	if err := core.SortTuples(rows, []core.OrderSpec{{Col: 0}, {Col: 1, Desc: true}}); err != nil {
		t.Fatal(err)
	}
	want := "[(1, c) (2, b) (2, a)]"
	if got := fmt.Sprint(rows); got != want {
		t.Errorf("sorted = %v, want %v", got, want)
	}
	// Large objects are not orderable.
	bad := []types.Tuple{{types.NewRaster(1, 1, []byte{1})}, {types.NewRaster(1, 1, []byte{2})}}
	if err := core.SortTuples(bad, []core.OrderSpec{{Col: 0}}); err == nil {
		t.Error("sorting rasters should fail")
	}
}

func TestServeOverListener(t *testing.T) {
	s := testQPC(t, core.StrategyAuto)
	network := netsim.NewNetwork(nil)
	l, err := network.Listen("qpc")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(l)
	defer l.Close()

	nc, err := network.Dial("qpc")
	if err != nil {
		t.Fatal(err)
	}
	// Raw protocol drive: hello, query, read schema + batches + EOS.
	runRawClient(t, nc)
}

func runRawClient(t *testing.T, nc net.Conn) {
	t.Helper()
	conn := newTestConn(nc)
	defer conn.Close()
	conn.hello(t)
	rows, stats := conn.query(t, "SELECT time FROM Rasters LIMIT 4")
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	if stats.ResultTuples != 4 {
		t.Errorf("stats = %+v", stats)
	}
}

func TestVerifyClassVerb(t *testing.T) {
	s := testQPC(t, core.StrategyAuto)
	network := netsim.NewNetwork(nil)
	l, err := network.Listen("qpc")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(l)
	defer l.Close()

	nc, err := network.Dial("qpc")
	if err != nil {
		t.Fatal(err)
	}
	conn := newTestConn(nc)
	defer conn.Close()
	conn.hello(t)
	rows, _ := conn.query(t, "VERIFY Perimeter")
	var out strings.Builder
	for _, r := range rows {
		out.WriteString(fmt.Sprint(r[0]))
		out.WriteByte('\n')
	}
	text := out.String()
	for _, want := range []string{
		"class Perimeter", "verdict: VERIFIED", "host capabilities: sqrt",
		"static bounds:", "static cost: instrs=", "purity=", "cost=",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("VERIFY output missing %q:\n%s", want, text)
		}
	}

	if _, err := s.VerifyClass("NoSuchOp"); err == nil {
		t.Error("VERIFY of unknown class should error")
	}
}

func TestProcCall(t *testing.T) {
	s := testQPC(t, core.StrategyAuto)
	lines, err := s.ProcCall("site1", "list-tables")
	if err != nil {
		t.Fatal(err)
	}
	var found bool
	for _, l := range lines {
		if strings.Contains(l, "Rasters") {
			found = true
		}
	}
	if !found {
		t.Errorf("list-tables = %v, want Rasters listed", lines)
	}
	if _, err := s.ProcCall("site1", "ping"); err != nil {
		t.Errorf("ping: %v", err)
	}
	if _, err := s.ProcCall("nosuch", "ping"); err == nil {
		t.Error("proc call to unknown site succeeded")
	}
}
