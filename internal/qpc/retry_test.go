package qpc

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"

	"mocha/internal/wire"
)

// fakeClock records retry sleeps instead of performing them.
type fakeClock struct {
	slept []time.Duration
}

func (f *fakeClock) sleep(_ context.Context, d time.Duration) error {
	f.slept = append(f.slept, d)
	return nil
}

// testPolicy is deterministic: no jitter unless rnd is set, no real
// sleeping.
func testPolicy(clock *fakeClock, rnd func() float64) RetryPolicy {
	return RetryPolicy{
		MaxAttempts: 4,
		BaseDelay:   10 * time.Millisecond,
		MaxDelay:    80 * time.Millisecond,
		Multiplier:  2,
		Jitter:      0.5,
		Budget:      8,
		Sleep:       clock.sleep,
		Rand:        rnd,
	}
}

var errTransient = fmt.Errorf("link hiccup: %w", syscall.ECONNRESET)

func TestRetrySucceedsAfterTransientFailures(t *testing.T) {
	clock := &fakeClock{}
	p := testPolicy(clock, func() float64 { return 0.5 }) // jitter factor 1.0
	budget := newRetryBudget(p)
	attempts := 0
	err := retryTransient(context.Background(), p, budget, nil, "", "op", func() error {
		attempts++
		if attempts < 3 {
			return errTransient
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if attempts != 3 {
		t.Fatalf("attempts = %d, want 3", attempts)
	}
	// Exponential: 10ms then 20ms (rand=0.5 → multiplier exactly 1).
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond}
	if len(clock.slept) != len(want) {
		t.Fatalf("slept %v, want %v", clock.slept, want)
	}
	for i := range want {
		if clock.slept[i] != want[i] {
			t.Fatalf("sleep %d = %v, want %v", i, clock.slept[i], want[i])
		}
	}
}

func TestRetryAttemptsExhausted(t *testing.T) {
	clock := &fakeClock{}
	p := testPolicy(clock, func() float64 { return 0.5 })
	attempts := 0
	err := retryTransient(context.Background(), p, newRetryBudget(p), nil, "", "op", func() error {
		attempts++
		return errTransient
	})
	if attempts != p.MaxAttempts {
		t.Fatalf("attempts = %d, want %d", attempts, p.MaxAttempts)
	}
	if err == nil || !errors.Is(err, syscall.ECONNRESET) {
		t.Fatalf("final error should carry the last failure, got %v", err)
	}
}

func TestRetryStopsOnPermanentError(t *testing.T) {
	clock := &fakeClock{}
	p := testPolicy(clock, nil)
	attempts := 0
	permanent := errors.New("qpc: unknown site \"x\"")
	err := retryTransient(context.Background(), p, newRetryBudget(p), nil, "", "op", func() error {
		attempts++
		return permanent
	})
	if attempts != 1 {
		t.Fatalf("permanent error retried: %d attempts", attempts)
	}
	if !errors.Is(err, permanent) {
		t.Fatalf("got %v", err)
	}
}

func TestRetryBudgetExhaustion(t *testing.T) {
	clock := &fakeClock{}
	p := testPolicy(clock, func() float64 { return 0.5 })
	p.Budget = 3
	budget := newRetryBudget(p)
	// Two operations share the budget of 3 retries; with every attempt
	// failing, the first drains MaxAttempts-1 = 3 tokens and the second
	// gets none.
	attempts := 0
	_ = retryTransient(context.Background(), p, budget, nil, "", "op1", func() error {
		attempts++
		return errTransient
	})
	if attempts != p.MaxAttempts {
		t.Fatalf("op1 attempts = %d, want %d", attempts, p.MaxAttempts)
	}
	attempts = 0
	err := retryTransient(context.Background(), p, budget, nil, "", "op2", func() error {
		attempts++
		return errTransient
	})
	if attempts != 1 {
		t.Fatalf("op2 attempts = %d, want 1 (budget empty)", attempts)
	}
	if err == nil || !errors.Is(err, syscall.ECONNRESET) {
		t.Fatalf("got %v", err)
	}
	if want := "retry budget exhausted"; !strings.Contains(err.Error(), want) {
		t.Fatalf("error %q should mention %q", err, want)
	}
}

// TestRetryBudgetErrorTyped pins the budget-dry error's identity:
// callers classify it with errors.Is/As instead of string matching, and
// it still unwraps to the transport error that burned the last token.
func TestRetryBudgetErrorTyped(t *testing.T) {
	clock := &fakeClock{}
	p := testPolicy(clock, func() float64 { return 0.5 })
	p.Budget = 1
	budget := newRetryBudget(p)
	_ = retryTransient(context.Background(), p, budget, nil, "", "op1", func() error {
		return errTransient
	})
	err := retryTransient(context.Background(), p, budget, nil, "", "op2", func() error {
		return errTransient
	})
	if !errors.Is(err, ErrRetryBudgetExhausted) {
		t.Fatalf("errors.Is(err, ErrRetryBudgetExhausted) = false for %v", err)
	}
	var be *BudgetExhaustedError
	if !errors.As(err, &be) {
		t.Fatalf("errors.As to *BudgetExhaustedError failed for %v", err)
	}
	if be.Op == "" {
		t.Error("typed error lost the operation name")
	}
	if !errors.Is(err, syscall.ECONNRESET) {
		t.Fatalf("budget error should unwrap to the last transport error, got %v", err)
	}
}

func TestRetryRespectsContextCancel(t *testing.T) {
	clock := &fakeClock{}
	p := testPolicy(clock, nil)
	ctx, cancel := context.WithCancel(context.Background())
	attempts := 0
	err := retryTransient(ctx, p, newRetryBudget(p), nil, "", "op", func() error {
		attempts++
		cancel()
		return errTransient
	})
	if attempts != 1 {
		t.Fatalf("attempts = %d, want 1 after cancel", attempts)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v", err)
	}
}

func TestDelayJitterBounds(t *testing.T) {
	base := 100 * time.Millisecond
	p := RetryPolicy{BaseDelay: base, MaxDelay: time.Second, Multiplier: 2, Jitter: 0.5}
	// rand=0 → 75% of base; rand=1 → 125% of base.
	p.Rand = func() float64 { return 0 }
	if got := p.delay(1); got != 75*time.Millisecond {
		t.Fatalf("low jitter delay = %v, want 75ms", got)
	}
	p.Rand = func() float64 { return 1 }
	if got := p.delay(1); got != 125*time.Millisecond {
		t.Fatalf("high jitter delay = %v, want 125ms", got)
	}
	// Growth is capped at MaxDelay (pre-jitter).
	p.Rand = func() float64 { return 0.5 }
	if got := p.delay(10); got != time.Second {
		t.Fatalf("capped delay = %v, want 1s", got)
	}
}

func TestWithDefaultsFillsZeroValue(t *testing.T) {
	var p RetryPolicy
	d := p.withDefaults()
	if d.MaxAttempts != 4 || d.BaseDelay == 0 || d.Budget == 0 {
		t.Fatalf("defaults not applied: %+v", d)
	}
	// Explicit single-attempt stays a single attempt.
	one := RetryPolicy{MaxAttempts: 1}.withDefaults()
	if one.MaxAttempts != 1 {
		t.Fatalf("explicit MaxAttempts overridden: %+v", one)
	}
}

func TestTransientErrClassification(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{nil, false},
		{io.EOF, true},
		{io.ErrUnexpectedEOF, true},
		{net.ErrClosed, true},
		{fmt.Errorf("dial: %w", syscall.ECONNREFUSED), true},
		{fmt.Errorf("send: %w", syscall.EPIPE), true},
		{os.ErrDeadlineExceeded, true}, // a stalled frame is worth a fresh conn
		{&wire.RemoteError{Msg: "no such class"}, false},
		{context.Canceled, false},
		{context.DeadlineExceeded, false},
		{errors.New("qpc: unknown site"), false},
	}
	for _, c := range cases {
		if got := transientErr(c.err); got != c.want {
			t.Errorf("transientErr(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}
