package qpc

import (
	"fmt"
	"strings"
	"time"

	"mocha/internal/core"
	"mocha/internal/exec"
	"mocha/internal/obs"
	"mocha/internal/types"
	"mocha/internal/wire"
)

// fragmentStream is a fragment's result stream with incremental
// recovery: when the connection dies mid-stream it reconnects and sends
// RESUME so the DAP continues from the last frame the QPC holds,
// re-receiving at most the DAP's replay window. Only when the window
// has evicted past that point does it fall back to a full restart of
// the fragment (discarding the duplicate prefix tuple-by-tuple). Plain
// streams (empty id) keep the pre-resume behaviour: any mid-stream
// failure is fatal.
type fragmentStream struct {
	e    *planExec
	idx  int
	frag *core.Fragment
	id   string
	ds   *dapSession
	r    *wire.BatchReader
	// unit is the activation this stream serves; a scattered unit with
	// sibling replicas can fail over to one when its serving replica
	// dies or trips its breaker.
	unit *exec.Unit

	delivered int64 // tuples handed to the pipeline
	rxBytes   int64 // payload bytes of delivered tuples
	// skipTuples discards the duplicate prefix after a full restart.
	skipTuples int64
	resumes    int
	restarts   int
	baseWait   time.Duration // RecvWait accumulated in replaced readers
}

// Next returns the next tuple, or (nil, nil) at end of stream,
// recovering from transient failures when the stream is resumable.
func (fs *fragmentStream) Next() (types.Tuple, error) {
	for {
		tup, err := fs.r.Next()
		if err != nil {
			if fs.id == "" || !transientErr(err) {
				return nil, err
			}
			if rerr := fs.recover(err); rerr != nil {
				return nil, rerr
			}
			continue
		}
		if tup == nil {
			return nil, nil
		}
		if fs.skipTuples > 0 {
			fs.skipTuples--
			fs.e.srv.met.restartWastedBytes.Add(int64(tup.WireSize()))
			continue
		}
		fs.delivered++
		fs.rxBytes += int64(tup.WireSize())
		return tup, nil
	}
}

// RecvWait is the stream's total time blocked on the network, across
// every connection it has used.
func (fs *fragmentStream) RecvWait() time.Duration {
	return fs.baseWait + fs.r.RecvWait
}

// EOS returns the stream's terminating stats payload, nil while it is
// still open.
func (fs *fragmentStream) EOS() []byte { return fs.r.EOSPayload }

// recover reconnects after a transient mid-stream failure and resumes
// (or, when the DAP's window has evicted, restarts) the stream. A
// scattered stream whose serving replica is beyond saving — breaker
// open, retry budget dry, or resume exhausted — fails over to a sibling
// replica instead of failing the query.
func (fs *fragmentStream) recover(cause error) error {
	e := fs.e
	site := fs.frag.Site
	health := e.srv.health
	health.ReportFailure(site, cause)
	if health.FailFast(site) {
		if fs.canFailover() {
			return fs.failover(cause)
		}
		return fmt.Errorf("qpc: fragment stream at %s interrupted and breaker open: %w", site, cause)
	}
	if !e.budget.take() {
		if fs.canFailover() {
			return fs.failover(cause)
		}
		return &BudgetExhaustedError{Op: fmt.Sprintf("qpc: resuming stream at %s", site), Last: cause}
	}

	span := e.trace.Begin("resume", site)
	defer span.End()
	old := fs.ds
	e.sessions[fs.idx] = nil
	old.close()

	// Reconnect and ask to resume; dial refusals and handshake drops
	// retry under the shared policy and budget.
	lastSeq := fs.r.Seq
	var ds *dapSession
	var ack wire.ResumeAck
	what := fmt.Sprintf("qpc: resume stream at %s", site)
	err := retryTransient(e.ctx, e.srv.cfg.Retry, e.budget, health, site, what, func() error {
		var err error
		ds, err = e.srv.openSession(e.ctx, site, e.trace.ID)
		if err != nil {
			return err
		}
		if ack, err = ds.resume(fs.id, lastSeq); err != nil {
			ds.close()
			return err
		}
		return nil
	})
	if err != nil {
		e.srv.met.resumeFailed.Inc()
		if fs.canFailover() {
			return fs.failover(err)
		}
		return err
	}
	e.sessions[fs.idx] = ds
	fs.ds = ds
	fs.baseWait += fs.r.RecvWait

	if ack.OK {
		// Continue in place: a fresh reader that discards the replayed
		// frames up to lastSeq, keeping any tuples the old reader had
		// decoded but not yet delivered.
		nr := wire.NewBatchReader(ds.conn, fs.frag.OutSchema)
		nr.SkipUntil = lastSeq
		nr.Seq = 0
		carryOver(fs.r, nr)
		fs.r = nr
		fs.resumes++
		e.srv.met.resumes.Inc()
		// Every byte already received is a byte a replay-from-scratch
		// would have re-sent: that is the resume's saving.
		e.srv.met.resumeSavedBytes.Add(fs.rxBytes)
		e.srv.cfg.Logf("qpc: stream %s resumed at %s past seq %d", fs.id, site, lastSeq)
		return nil
	}

	// Window evicted (or stream expired): full restart on the fresh
	// session under a new stream ID, skipping the rows already delivered.
	e.srv.met.resumeFailed.Inc()
	e.srv.cfg.Logf("qpc: stream %s at %s cannot resume (%s); restarting fragment", fs.id, site, ack.Reason)
	return fs.restart(ds)
}

// restart re-deploys and re-activates the fragment from scratch after a
// failed resume, arranging for the already-delivered prefix to be
// discarded. The rows a fragment emits are deterministic, so skipping
// exactly the delivered count resumes the pipeline without duplicates.
func (fs *fragmentStream) restart(ds *dapSession) error {
	e := fs.e
	if fs.frag.SemiJoinCol >= 0 {
		return fmt.Errorf("qpc: fragment at %s lost its semi-join stream past the replay window; cannot restart", fs.frag.Site)
	}
	// Re-shipped classes are recovery overhead, not query work: they go
	// to the process wasted-bytes metric, like an aborted deploy attempt.
	scratch := &QueryStats{}
	if err := e.srv.deployCode(ds, fs.frag.Code, scratch); err != nil {
		return err
	}
	e.srv.met.wastedCodeBytes.Add(int64(scratch.CodeBytesShipped))
	if err := ds.deployPlan(fs.frag); err != nil {
		return err
	}
	fs.restarts++
	newID := fmt.Sprintf("%s~r%d", fs.id, fs.restarts)
	part, of := 0, 0
	if fs.unit != nil {
		part, of = fs.unit.Part, fs.unit.Of
	}
	r, err := ds.activatePart(fs.frag.OutSchema, newID, part, of)
	if err != nil {
		return err
	}
	fs.id = newID
	fs.r = r
	fs.skipTuples = fs.delivered
	e.trace.Add(obs.Span{Name: "restart", Site: fs.frag.Site,
		StartMicros: e.trace.Since(time.Now()), Tuples: fs.delivered})
	return nil
}

// carryOver moves tuples the old reader decoded but had not yet
// delivered into the new reader, so a resume loses nothing.
func carryOver(old, next *wire.BatchReader) {
	if rest := old.Pending(); len(rest) > 0 {
		next.Prime(rest)
	}
}

// canFailover reports whether the stream may abandon its serving
// replica for a sibling: it must be a scattered shard with siblings,
// and a resumable plain stream (a semi-join participant's key exchange
// cannot be replayed against a different site — unreachable today, as
// the optimizer never plans semi-joins over placed tables).
func (fs *fragmentStream) canFailover() bool {
	return fs.unit != nil && len(fs.unit.Replicas) > 1 &&
		fs.id != "" && fs.frag.SemiJoinCol < 0
}

// failover demotes the stream's serving replica and restarts the shard
// on a sibling: fresh session, code and plan deployment, and a full
// replay with the already-delivered prefix discarded tuple-by-tuple —
// the PR 3 restart machinery pointed at a different site. Rows a shard
// emits are deterministic and identical across replicas, so the
// pipeline observes one uninterrupted stream. Every sibling dead or
// fail-fast yields a typed partition-unavailable error.
func (fs *fragmentStream) failover(cause error) error {
	e := fs.e
	u := fs.unit
	from := fs.frag.Site
	health := e.srv.health
	table := e.plan.Fragments[u.FragIdx].Table
	span := e.trace.Begin("failover", from)
	defer span.End()
	if e.sessions[fs.idx] != nil {
		e.sessions[fs.idx] = nil
		fs.ds.close()
	}
	fs.baseWait += fs.r.RecvWait
	lastErr := cause
	for _, sib := range u.Replicas {
		if sib == from || health.FailFast(sib) {
			continue
		}
		if e.ctx.Err() != nil {
			break
		}
		ds, err := e.srv.openSession(e.ctx, sib, e.trace.ID)
		if err != nil {
			health.ReportFailure(sib, err)
			lastErr = err
			continue
		}
		ds.openOff = e.trace.Since(time.Now())
		fs.frag.Site = sib
		if err := fs.restart(ds); err != nil {
			ds.close()
			health.ReportFailure(sib, err)
			fs.frag.Site = from
			lastErr = err
			continue
		}
		e.sessions[fs.idx] = ds
		fs.ds = ds
		e.srv.met.replicaFailovers.Inc()
		e.srv.cfg.Logf("qpc: partition %d of %s failed over from %s to %s", u.Part, table, from, sib)
		return nil
	}
	return &PartitionUnavailableError{Table: table, Part: u.Part, Sites: u.Replicas, Last: lastErr}
}

// PartitionUnavailableError marks a query that failed because one shard
// of a partitioned table could not be served by any replica — the
// serving replica died mid-stream (or never answered) and every
// sibling was dead or fail-fast too. It unwraps to the last transport
// failure.
type PartitionUnavailableError struct {
	// Table is the logical (partitioned) table name.
	Table string
	// Part is the partition whose replica set was exhausted.
	Part int
	// Sites lists the replica sites that were tried or skipped.
	Sites []string
	// Last is the final transport failure.
	Last error
}

func (e *PartitionUnavailableError) Error() string {
	return fmt.Sprintf("qpc: partition %d of %s unavailable on every replica (%s): %v",
		e.Part, e.Table, strings.Join(e.Sites, ", "), e.Last)
}

func (e *PartitionUnavailableError) Unwrap() error { return e.Last }
