package qpc

import (
	"errors"
	"testing"

	"mocha/internal/catalog"
	"mocha/internal/core"
	"mocha/internal/dap"
	"mocha/internal/exec"
	"mocha/internal/netsim"
	"mocha/internal/ops"
	"mocha/internal/sequoia"
	"mocha/internal/storage"
)

// testQPCBudget wires the standard one-DAP test server but with the
// query-memory governor armed at the given budget.
func testQPCBudget(t *testing.T, budget int64) *Server {
	t.Helper()
	network := netsim.NewNetwork(nil)
	store, err := storage.OpenStore("", 32)
	if err != nil {
		t.Fatal(err)
	}
	if err := sequoia.GenerateAll(store, sequoia.TestScale()); err != nil {
		t.Fatal(err)
	}
	l, err := network.Listen("dap1")
	if err != nil {
		t.Fatal(err)
	}
	go dap.New(dap.Config{Site: "site1", Driver: &dap.StorageDriver{Store: store}}).Serve(l)
	t.Cleanup(func() { l.Close() })

	reg := ops.Builtins()
	cat := catalog.New(reg, catalog.NewRepositoryFromRegistry(reg))
	cat.AddSite(&catalog.Site{Name: "site1", Addr: "dap1"})
	registerStoreTables(t, cat, store, "site1", "Rasters")
	return New(Config{
		Cat: cat, Dial: network.Dial, Strategy: core.StrategyAuto,
		Exec: exec.Tuning{MemBudgetBytes: budget},
	})
}

// TestAdmissionStaticScratch pins the admission contract: under a
// governor, a code-shipping plan reserves its verifier-derived static
// scratch before any setup work, so a budget smaller than the shipped
// code's frame bound rejects the query up front with OverBudgetError
// instead of failing mid-stream — and a sufficient budget admits it.
func TestAdmissionStaticScratch(t *testing.T) {
	// AvgEnergy's static scratch bound is a few hundred bytes; 64 bytes
	// cannot even hold one value slot.
	s := testQPCBudget(t, 64)
	_, err := s.Execute(codeShipQuery)
	if err == nil {
		t.Fatal("expected over-budget admission failure, query succeeded")
	}
	var ob *exec.OverBudgetError
	if !errors.As(err, &ob) {
		t.Fatalf("want OverBudgetError, got %v", err)
	}
	if ob.Op != "admission:static-scratch" {
		t.Fatalf("over-budget op = %q, want admission:static-scratch", ob.Op)
	}

	// A generous budget admits and runs the same query.
	s2 := testQPCBudget(t, 1<<20)
	if s2.Governor() == nil {
		t.Fatal("budgeted server has no governor")
	}
	res, err := s2.Execute(codeShipQuery)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no rows")
	}
}

// TestStaticScratchBytes checks the plan fold directly: stamped refs
// sum, unstamped and malformed refs contribute nothing, and a canary
// override replaces the active ref's bound (case-insensitively).
func TestStaticScratchBytes(t *testing.T) {
	plan := &core.Plan{Fragments: []*core.Fragment{
		{Code: []core.CodeRef{
			{Name: "AvgEnergy", Cost: "instrs=100;fixed=10;pertrip=2;scratch=448;alloc=0;purity=pure"},
			{Name: "Legacy"}, // no stamp: admissible, contributes 0
		}},
		{Code: []core.CodeRef{
			{Name: "Perimeter", Cost: "not a cost string"}, // malformed: ignored
			{Name: "Overlap", Cost: "instrs=unbounded;fixed=5;pertrip=1;scratch=100;alloc=unbounded;purity=pure"},
		}},
	}}
	if got := exec.StaticScratchBytes(plan, nil); got != 548 {
		t.Fatalf("staticScratchBytes = %d, want 548", got)
	}
	over := map[string]core.CodeRef{
		"avgenergy": {Name: "AvgEnergy", Cost: "instrs=200;fixed=20;pertrip=4;scratch=960;alloc=0;purity=pure"},
	}
	if got := exec.StaticScratchBytes(plan, over); got != 1060 {
		t.Fatalf("staticScratchBytes with override = %d, want 1060", got)
	}
}
