package qpc

import (
	"context"
	"strings"
	"testing"
	"time"

	"mocha/internal/core"
)

// widenFrameTimeout keeps code-shipping queries (whose first DAP
// response waits on operator compilation, slow under -race) inside the
// per-frame bound.
func widenFrameTimeout(c *Config) { c.FrameTimeout = 2 * time.Second }

// TestAnalyzeTraceNetBytesMatchCVDT pins the observability layer's core
// accounting invariant: the bytes attributed to network transfer across
// all trace spans must equal the CVDT the stats report. Both numbers
// are derived from the same transfers by independent code paths (span
// AddBytes at each streaming site vs. the QueryStats accumulators), so
// a drifting instrumentation point shows up as a mismatch here.
func TestAnalyzeTraceNetBytesMatchCVDT(t *testing.T) {
	cases := []struct {
		name string
		sql  string
	}{
		{"two_site_join", joinQuery},
		{"single_site_stream", streamQuery},
		{"single_site_codeship", codeShipQuery},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h := newChaosHarness(t, widenFrameTimeout)
			_, stats, trace, err := h.srv.Analyze(context.Background(), tc.sql)
			if err != nil {
				t.Fatal(err)
			}
			if trace == nil {
				t.Fatal("Analyze returned no trace")
			}
			if got, want := trace.NetBytes(), stats.CVDT; got != want {
				t.Errorf("trace spans carry %d net bytes, stats report CVDT %d", got, want)
			}
			if stats.CVDT == 0 {
				t.Error("query moved no bytes; the invariant was checked vacuously")
			}
		})
	}
}

// TestAnalyzeTwoSiteSpansPerFragment verifies the acceptance shape of
// EXPLAIN ANALYZE on a query spanning both sites: every site that runs
// a fragment contributes stream spans, and the rendered report exposes
// the per-fragment timeline.
func TestAnalyzeTwoSiteSpansPerFragment(t *testing.T) {
	h := newChaosHarness(t, nil)
	_, stats, trace, err := h.srv.Analyze(context.Background(), joinQuery)
	if err != nil {
		t.Fatal(err)
	}
	streams := map[string]int64{}
	for _, sp := range trace.Spans() {
		if strings.HasPrefix(sp.Name, "stream") || strings.HasPrefix(sp.Name, "keys:") {
			streams[sp.Site] += sp.NetBytes
		}
	}
	for _, site := range []string{"site1", "site2"} {
		if streams[site] == 0 {
			t.Errorf("no net bytes attributed to a stream span of %s; spans: %v", site, trace.Spans())
		}
	}
	var total int64
	for _, b := range streams {
		total += b
	}
	if total != stats.CVDT {
		t.Errorf("per-site stream bytes sum to %d, CVDT is %d", total, stats.CVDT)
	}

	text, err := h.srv.ExplainAnalyze(context.Background(), joinQuery)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"trace", "site1", "site2", "stream"} {
		if !strings.Contains(text, want) {
			t.Errorf("EXPLAIN ANALYZE output missing %q:\n%s", want, text)
		}
	}
}

// TestAnalyzeUnderEveryStrategy checks the invariant is not an artifact
// of one placement: forced code shipping, forced data shipping and the
// optimizer's choice all keep span net bytes equal to CVDT.
func TestAnalyzeUnderEveryStrategy(t *testing.T) {
	for _, strat := range []core.Strategy{core.StrategyCodeShip, core.StrategyDataShip, core.StrategyAuto} {
		strat := strat
		t.Run(strat.String(), func(t *testing.T) {
			h := newChaosHarness(t, func(c *Config) {
				c.Strategy = strat
				widenFrameTimeout(c)
			})
			_, stats, trace, err := h.srv.Analyze(context.Background(), codeShipQuery)
			if err != nil {
				t.Fatal(err)
			}
			if got, want := trace.NetBytes(), stats.CVDT; got != want {
				t.Errorf("%v: trace net bytes %d != CVDT %d", strat, got, want)
			}
		})
	}
}
