package qpc

import (
	"errors"
	"testing"
	"time"

	"mocha/internal/obs"
)

// testHealth builds a registry on a manual clock so breaker timing is
// deterministic.
func testHealth(pol BreakerPolicy) (*HealthRegistry, *time.Time) {
	now := time.Unix(1000, 0)
	pol.Now = func() time.Time { return now }
	return newHealthRegistry(pol, obs.NewRegistry()), &now
}

var errLink = errors.New("link down")

func TestBreakerTripsAtThreshold(t *testing.T) {
	h, _ := testHealth(BreakerPolicy{FailureThreshold: 3})
	for i := 0; i < 2; i++ {
		h.ReportFailure("s", errLink)
		if h.Degraded("s") {
			t.Fatalf("breaker open after %d failures, threshold is 3", i+1)
		}
	}
	h.ReportFailure("s", errLink)
	if !h.Degraded("s") || h.State("s") != "open" {
		t.Fatalf("breaker should be open at the threshold, state %q", h.State("s"))
	}
	if !h.FailFast("s") {
		t.Fatal("freshly opened breaker should fail fast")
	}
}

func TestBreakerSuccessResetsRun(t *testing.T) {
	h, _ := testHealth(BreakerPolicy{FailureThreshold: 3})
	h.ReportFailure("s", errLink)
	h.ReportFailure("s", errLink)
	h.ReportSuccess("s", time.Millisecond)
	h.ReportFailure("s", errLink)
	h.ReportFailure("s", errLink)
	if h.Degraded("s") {
		t.Fatal("interleaved success should reset the consecutive-failure run")
	}
}

func TestBreakerHalfOpenThenCloses(t *testing.T) {
	h, now := testHealth(BreakerPolicy{FailureThreshold: 1, OpenFor: 3 * time.Second})
	h.ReportFailure("s", errLink)
	if got := h.State("s"); got != "open" {
		t.Fatalf("state %q, want open", got)
	}
	*now = now.Add(3 * time.Second)
	if got := h.State("s"); got != "half-open" {
		t.Fatalf("state %q after OpenFor elapsed, want half-open", got)
	}
	if h.FailFast("s") {
		t.Fatal("half-open breaker must allow the probe")
	}
	// While half-open the site still plans degraded.
	if !h.Degraded("s") {
		t.Fatal("half-open site should stay degraded for planning")
	}
	h.ReportSuccess("s", time.Millisecond)
	if h.Degraded("s") || h.State("s") != "closed" {
		t.Fatalf("successful probe should close the breaker, state %q", h.State("s"))
	}
}

func TestBreakerFailedProbeReArms(t *testing.T) {
	h, now := testHealth(BreakerPolicy{FailureThreshold: 1, OpenFor: 3 * time.Second})
	h.ReportFailure("s", errLink)
	*now = now.Add(3 * time.Second)
	if h.FailFast("s") {
		t.Fatal("probe window should be open")
	}
	h.ReportFailure("s", errLink) // the probe failed
	if !h.FailFast("s") {
		t.Fatal("failed probe must re-arm the open period")
	}
	if got := h.State("s"); got != "open" {
		t.Fatalf("state %q after failed probe, want open", got)
	}
}

func TestBreakerForceOpenPinsUntilReset(t *testing.T) {
	h, now := testHealth(BreakerPolicy{OpenFor: time.Second})
	h.ForceOpen("s")
	*now = now.Add(time.Hour)
	if !h.FailFast("s") || h.State("s") != "open" {
		t.Fatal("forced breaker must not half-open with time")
	}
	h.ReportSuccess("s", time.Millisecond)
	if !h.Degraded("s") {
		t.Fatal("success must not close a forced breaker")
	}
	h.Reset("s")
	if h.Degraded("s") || h.State("s") != "closed" {
		t.Fatal("Reset should close and unpin the breaker")
	}
}

func TestBreakerDisabledIsInert(t *testing.T) {
	h, _ := testHealth(BreakerPolicy{Disabled: true})
	for i := 0; i < 10; i++ {
		h.ReportFailure("s", errLink)
	}
	if h.Degraded("s") || h.FailFast("s") || h.State("s") != "closed" {
		t.Fatal("disabled breaker must never trip")
	}
}

func TestBreakerNilRegistryIsSafe(t *testing.T) {
	var h *HealthRegistry
	h.ReportFailure("s", errLink)
	h.ReportSuccess("s", 0)
	h.ForceOpen("s")
	h.Reset("s")
	if h.Degraded("s") || h.FailFast("s") || h.State("s") != "closed" {
		t.Fatal("nil registry must behave as all-healthy")
	}
}

func TestBreakerMetricsTrackOpens(t *testing.T) {
	reg := obs.NewRegistry()
	h := newHealthRegistry(BreakerPolicy{FailureThreshold: 1}, reg)
	h.ReportFailure("a", errLink)
	h.ReportFailure("b", errLink)
	if got := reg.Gauge("qpc_breaker_open_sites").Value(); got != 2 {
		t.Fatalf("open-sites gauge %v, want 2", got)
	}
	h.ReportSuccess("a", time.Millisecond)
	if got := reg.Counter("qpc_breaker_reclosed").Value(); got != 1 {
		t.Fatalf("reclosed counter %d, want 1", got)
	}
	if got := reg.Counter("qpc_breaker_opened").Value(); got != 2 {
		t.Fatalf("opened counter %d, want 2", got)
	}
	if got := reg.Gauge("qpc_breaker_open_sites").Value(); got != 1 {
		t.Fatalf("open-sites gauge %v after reclose, want 1", got)
	}
}
