package qpc

import (
	"context"
	"fmt"
	"net"
	"strings"
	"time"

	"mocha/internal/catalog"
	"mocha/internal/core"
	"mocha/internal/types"
	"mocha/internal/wire"
)

// dapSession is one QPC↔DAP connection executing fragments of the
// current query.
type dapSession struct {
	site string
	conn *wire.Conn
	// release detaches the connection from the query context.
	release func()
	// openOff is the session-open offset on the query's trace timeline,
	// in microseconds. DAP-reported spans are relative to the session
	// open; adding openOff re-anchors them onto the QPC's timeline.
	openOff int64
}

// dial opens a transport connection to a DAP address, preferring the
// context-aware dialer when configured.
func (s *Server) dial(ctx context.Context, addr string) (net.Conn, error) {
	if s.cfg.DialContext != nil {
		return s.cfg.DialContext(ctx, addr)
	}
	return s.cfg.Dial(addr)
}

// openSession dials a DAP and completes the HELLO handshake, announcing
// the query's trace ID so the DAP tags its spans with it. The session's
// frame I/O is bounded by the configured FrameTimeout and by ctx's
// deadline; cancelling ctx aborts any in-flight exchange.
func (s *Server) openSession(ctx context.Context, site, traceID string) (*dapSession, error) {
	def, ok := s.cfg.Cat.SiteByName(site)
	if !ok {
		return nil, fmt.Errorf("qpc: unknown site %q", site)
	}
	nc, err := s.dial(ctx, def.Addr)
	if err != nil {
		return nil, fmt.Errorf("qpc: dial %s: %w", def.Addr, err)
	}
	conn := wire.NewConn(nc)
	conn.Instrument(s.cfg.Metrics, "qpc_wire")
	conn.SetFrameTimeout(s.cfg.FrameTimeout, s.cfg.FrameTimeout)
	ds := &dapSession{site: site, conn: conn, release: conn.Bind(ctx)}
	hello, err := wire.EncodeXML(&wire.Hello{Role: "qpc", Site: "qpc", Trace: traceID})
	if err != nil {
		ds.close()
		return nil, err
	}
	if err := conn.Send(wire.MsgHello, hello); err != nil {
		ds.close()
		return nil, fmt.Errorf("qpc: hello to %s: %w", site, err)
	}
	if _, err := conn.Expect(wire.MsgHelloAck); err != nil {
		ds.close()
		return nil, fmt.Errorf("qpc: hello to %s: %w", site, err)
	}
	return ds, nil
}

func (ds *dapSession) close() {
	// Best-effort courtesy CLOSE; the write is bounded by the session's
	// frame timeout so a dead peer cannot stall cleanup.
	_ = ds.conn.Send(wire.MsgClose, nil)
	ds.conn.Close()
	if ds.release != nil {
		ds.release()
	}
}

// deployCode runs the code-deployment phase (section 3.6) for a
// fragment: validate the DAP's cache, then ship only the classes it
// needs, fetched from the well-known repository.
func (s *Server) deployCode(ds *dapSession, refs []core.CodeRef, stats *QueryStats) error {
	if len(refs) == 0 {
		return nil
	}
	check := wire.CodeCheck{}
	for _, r := range refs {
		check.Classes = append(check.Classes, wire.CodeCheckItem{
			Name: r.Name, Version: r.Version, Checksum: r.Checksum,
		})
	}
	payload, err := wire.EncodeXML(&check)
	if err != nil {
		return err
	}
	if err := ds.conn.Send(wire.MsgCodeCheck, payload); err != nil {
		return err
	}
	ackData, err := ds.conn.Expect(wire.MsgCodeCheckAck)
	if err != nil {
		return err
	}
	var ack wire.CodeCheckAck
	if err := wire.DecodeXML(ackData, &ack); err != nil {
		return err
	}
	stats.CacheHits += len(refs) - len(ack.Needed)
	// Resolve each needed class by the exact digest the plan pinned, so a
	// fragment deployed mid-rollout (or re-deployed by a stream restart
	// after failover) always ships the release its plan was routed to —
	// never whichever release is active at ship time.
	byName := make(map[string]core.CodeRef, len(refs))
	for _, r := range refs {
		byName[strings.ToLower(r.Name)] = r
	}
	for _, name := range ack.Needed {
		var cls *catalog.Class
		ok := false
		if ref, have := byName[strings.ToLower(name)]; have && ref.Checksum != "" {
			cls, ok = s.cfg.Cat.Repo().Resolve(ref.Name, ref.Checksum)
		}
		if !ok {
			cls, ok = s.cfg.Cat.Repo().Get(name)
		}
		if !ok {
			return fmt.Errorf("qpc: class %s vanished from the repository", name)
		}
		if err := ds.conn.Send(wire.MsgDeployCode, cls.Blob); err != nil {
			return err
		}
		if _, err := ds.conn.Expect(wire.MsgAck); err != nil {
			return fmt.Errorf("qpc: deploying %s to %s: %w", name, ds.site, err)
		}
		stats.CodeClassesShipped++
		stats.CodeBytesShipped += len(cls.Blob)
		s.cfg.Logf("qpc: shipped %s (%d bytes) to %s", name, len(cls.Blob), ds.site)
	}
	return nil
}

// deployPlan ships a fragment document.
func (ds *dapSession) deployPlan(frag *core.Fragment) error {
	data, err := core.EncodeFragment(frag)
	if err != nil {
		return err
	}
	if err := ds.conn.Send(wire.MsgDeployPlan, data); err != nil {
		return err
	}
	_, err = ds.conn.Expect(wire.MsgAck)
	return err
}

// sendSemiJoinKeys delivers the key set for semi-join filtering,
// returning the key bytes that crossed the network (the caller records
// them on the trace; they were counted into CVDT here).
func (ds *dapSession) sendSemiJoinKeys(keys []types.Tuple, stats *QueryStats) (int64, error) {
	payload := wire.EncodeBatch(keys)
	if err := ds.conn.Send(wire.MsgSemiJoinKeys, payload); err != nil {
		return 0, err
	}
	// Key delivery is real data movement: count it into CVDT.
	var keyBytes int64
	for _, k := range keys {
		keyBytes += int64(k.WireSize())
	}
	stats.CVDT += keyBytes
	if _, err := ds.conn.Expect(wire.MsgAck); err != nil {
		return 0, err
	}
	return keyBytes, nil
}

// activate starts fragment execution and returns a batch reader over its
// output stream (plain, non-resumable protocol).
func (ds *dapSession) activate(out types.Schema) (*wire.BatchReader, error) {
	return ds.activateStream(out, "")
}

// activateStream starts fragment execution. A non-empty streamID asks
// the DAP to run the resumable protocol: sequence-numbered frames and a
// replay window retained under that ID, so a broken connection can be
// resumed instead of failing the query.
func (ds *dapSession) activateStream(out types.Schema, streamID string) (*wire.BatchReader, error) {
	return ds.activatePart(out, streamID, 0, 0)
}

// activatePart starts fragment execution for one shard of a scattered
// fragment. of > 0 tags the activation with the shard's partition ID
// and the pre-pruning partition count; the DAP echoes both in its EOS
// stats so the QPC can verify each gathered stream's provenance.
func (ds *dapSession) activatePart(out types.Schema, streamID string, part, of int) (*wire.BatchReader, error) {
	if of <= 0 {
		part, of = 0, 0 // normalize the unpartitioned sentinel off the wire
	}
	var payload []byte
	if streamID != "" || of > 0 {
		var err error
		payload, err = wire.EncodeXML(&wire.Activate{Stream: streamID, Part: part, Of: of})
		if err != nil {
			return nil, err
		}
	}
	if err := ds.conn.Send(wire.MsgActivate, payload); err != nil {
		return nil, err
	}
	return wire.NewBatchReader(ds.conn, out), nil
}

// resume asks the DAP to continue a retained stream past lastSeq (the
// last frame the QPC holds). A negative ack means the replay window no
// longer covers the gap; the transport succeeded, so the caller must
// fall back to restarting the fragment rather than retrying.
func (ds *dapSession) resume(streamID string, lastSeq uint64) (wire.ResumeAck, error) {
	var ack wire.ResumeAck
	payload, err := wire.EncodeXML(&wire.Resume{Stream: streamID, LastSeq: lastSeq})
	if err != nil {
		return ack, err
	}
	if err := ds.conn.Send(wire.MsgResume, payload); err != nil {
		return ack, err
	}
	data, err := ds.conn.Expect(wire.MsgResumeAck)
	if err != nil {
		return ack, err
	}
	err = wire.DecodeXML(data, &ack)
	return ack, err
}

// drainStats decodes the DAP's EOS stats report and folds it into the
// query stats, consuming the payload so each fragment's measurements
// merge exactly once (the error path re-walks all readers to salvage
// partial stats). countVolumes controls whether the fragment's byte
// counts enter CVDA/CVDT (the semi-join key phase contributes time but
// its accesses are bookkeeping, not the experiment's logical volumes).
// The decoded report is returned so the caller can record trace spans
// from it.
func drainStats(r *wire.BatchReader, stats *QueryStats, countVolumes bool) (*wire.ExecStats, error) {
	if r.EOSPayload == nil {
		return nil, fmt.Errorf("qpc: fragment stream ended without stats")
	}
	var es wire.ExecStats
	if err := wire.DecodeXML(r.EOSPayload, &es); err != nil {
		return nil, err
	}
	r.EOSPayload = nil
	stats.DBMS += float64(es.DBMicros) / 1000
	stats.CPUMS += float64(es.CPUMicros) / 1000
	stats.NetMS += float64(es.NetMicros) / 1000
	stats.MiscMS += float64(es.MiscMicros) / 1000
	if countVolumes {
		stats.CVDA += es.BytesAccessed
		stats.CVDT += es.BytesSent
	} else {
		stats.CVDT += es.BytesSent // keys really cross the network
	}
	return &es, nil
}

// runKeyPhase executes a key-projection fragment, returning the key set
// and the DAP's stats report for the phase (trace span material).
func (s *Server) runKeyPhase(ds *dapSession, main *core.Fragment, stats *QueryStats) ([]types.Tuple, *wire.ExecStats, error) {
	keyCol := main.SemiJoinCol
	keyFrag := &core.Fragment{
		Site:        main.Site,
		Table:       main.Table,
		Cols:        main.Cols,
		InSchema:    main.InSchema,
		Predicates:  main.Predicates,
		SemiJoinCol: -1,
		Projections: []core.Output{{
			Name: "key",
			Expr: core.NewCol(keyCol, main.InSchema.Columns[keyCol].Kind),
		}},
		Code:      main.Code,
		OutSchema: types.NewSchema(types.Column{Name: "key", Kind: main.InSchema.Columns[keyCol].Kind}),
	}
	if err := ds.deployPlan(keyFrag); err != nil {
		return nil, nil, err
	}
	reader, err := ds.activate(keyFrag.OutSchema)
	if err != nil {
		return nil, nil, err
	}
	seen := map[uint64][]types.Object{}
	var keys []types.Tuple
	for {
		tup, err := reader.Next()
		if err != nil {
			return nil, nil, err
		}
		if tup == nil {
			break
		}
		k, ok := tup[0].(types.Small)
		if !ok {
			return nil, nil, fmt.Errorf("qpc: semi-join key of kind %v", tup[0].Kind())
		}
		h := k.Hash()
		dup := false
		for _, c := range seen[h] {
			if k.Equal(c) {
				dup = true
				break
			}
		}
		if !dup {
			seen[h] = append(seen[h], tup[0])
			keys = append(keys, tup)
		}
	}
	es, err := drainStats(reader, stats, false)
	if err != nil {
		return nil, nil, err
	}
	return keys, es, nil
}

// intersectKeys returns the tuples of a whose key appears in b.
func intersectKeys(a, b []types.Tuple) []types.Tuple {
	index := map[uint64][]types.Object{}
	for _, t := range b {
		k := t[0].(types.Small)
		index[k.Hash()] = append(index[k.Hash()], t[0])
	}
	var out []types.Tuple
	for _, t := range a {
		k := t[0].(types.Small)
		for _, c := range index[k.Hash()] {
			if k.Equal(c) {
				out = append(out, t)
				break
			}
		}
	}
	return out
}

// timedPhase measures a deployment step into DeployMS.
func timedPhase(stats *QueryStats, fn func() error) error {
	start := time.Now()
	err := fn()
	stats.DeployMS += float64(time.Since(start).Microseconds()) / 1000
	return err
}
