package qpc

// Integration coverage for incremental stream recovery: a QPC and a DAP
// over netsim, with drop faults striking mid-stream. The DAP batches
// small (4 KiB target) so the Rasters stream spans many frames and a
// resume has a real prefix to save; the replay window is small (32 KiB)
// so the retransmission bound is tight and test-assertable.

import (
	"context"
	"strings"
	"testing"
	"time"

	"mocha/internal/catalog"
	"mocha/internal/core"
	"mocha/internal/dap"
	"mocha/internal/netsim"
	"mocha/internal/obs"
	"mocha/internal/ops"
	"mocha/internal/sequoia"
	"mocha/internal/storage"
	"mocha/internal/types"
)

const testReplayWindow = 32 << 10

// resumeHarness is a QPC with one DAP site ("site1" at addr "dap1")
// holding the Sequoia tables, with dedicated metric registries on both
// sides so counter assertions are isolated per test.
type resumeHarness struct {
	srv     *Server
	network *netsim.Network
	dapReg  *obs.Registry
}

func newResumeHarness(t *testing.T, tuneQ func(*Config), tuneD func(*dap.Config)) *resumeHarness {
	t.Helper()
	network := netsim.NewNetwork(nil)
	cfg := sequoia.TestScale()
	store, err := storage.OpenStore("", 32)
	if err != nil {
		t.Fatal(err)
	}
	if err := sequoia.GenerateAll(store, cfg); err != nil {
		t.Fatal(err)
	}

	dapReg := obs.NewRegistry()
	dcfg := dap.Config{
		Site:              "site1",
		Driver:            &dap.StorageDriver{Store: store},
		IdleTimeout:       2 * time.Second,
		FrameTimeout:      time.Second,
		BatchBytes:        4 << 10,
		ReplayWindowBytes: testReplayWindow,
		Metrics:           dapReg,
	}
	if tuneD != nil {
		tuneD(&dcfg)
	}
	l, err := network.Listen("dap1")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go dap.New(dcfg).Serve(l)

	reg := ops.Builtins()
	cat := catalog.New(reg, catalog.NewRepositoryFromRegistry(reg))
	cat.AddSite(&catalog.Site{Name: "site1", Addr: "dap1"})
	registerStoreTables(t, cat, store, "site1", "Polygons", "Graphs", "Rasters")

	qcfg := Config{
		Cat:          cat,
		Dial:         network.Dial,
		Strategy:     core.StrategyAuto,
		Metrics:      obs.NewRegistry(),
		QueryTimeout: 5 * time.Second,
		FrameTimeout: 2 * time.Second,
		Retry: RetryPolicy{
			MaxAttempts: 4,
			BaseDelay:   5 * time.Millisecond,
			MaxDelay:    50 * time.Millisecond,
			Multiplier:  2,
			Jitter:      0.5,
			Budget:      8,
		},
	}
	if tuneQ != nil {
		tuneQ(&qcfg)
	}
	return &resumeHarness{srv: New(qcfg), network: network, dapReg: dapReg}
}

func (h *resumeHarness) executeWithin(t *testing.T, wall time.Duration, sql string) (*Result, error) {
	t.Helper()
	type outcome struct {
		res *Result
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := h.srv.Execute(sql)
		done <- outcome{res, err}
	}()
	select {
	case o := <-done:
		return o.res, o.err
	case <-time.After(wall):
		t.Fatalf("query %q hung for more than %v", sql, wall)
		return nil, nil
	}
}

func (h *resumeHarness) qpcCounter(name string) int64 {
	return h.srv.Metrics().Counter(name).Value()
}

// TestResumeSingleDropMidStream is the acceptance scenario: one drop
// strikes the image stream mid-flight, the QPC reconnects and RESUMEs,
// and the query completes with volumes identical to a clean run. The
// DAP retransmits only its replay window, and the bytes already
// delivered before the drop are counted as the resume's saving.
func TestResumeSingleDropMidStream(t *testing.T) {
	clean := newResumeHarness(t, nil, nil)
	base, err := clean.executeWithin(t, 10*time.Second, streamQuery)
	if err != nil {
		t.Fatal(err)
	}
	if len(base.Rows) == 0 || base.Stats.CVDT == 0 {
		t.Fatalf("clean baseline moved nothing: %d rows, CVDT %d", len(base.Rows), base.Stats.CVDT)
	}

	h := newResumeHarness(t, nil, nil)
	// Strike well inside the stream: past the handshake, with frames
	// still to come.
	h.network.SetFault("dap1", &netsim.FaultPlan{DropFirstConnAfterBytes: base.Stats.CVDT / 2})
	res, err := h.executeWithin(t, 10*time.Second, streamQuery)
	if err != nil {
		t.Fatalf("query should survive a single mid-stream drop via RESUME: %v", err)
	}
	if len(res.Rows) != len(base.Rows) {
		t.Errorf("resumed query returned %d rows, clean run %d", len(res.Rows), len(base.Rows))
	}
	if res.Stats.CVDT != base.Stats.CVDT {
		t.Errorf("CVDT %d after resume, clean run moved %d (replayed frames double-counted?)",
			res.Stats.CVDT, base.Stats.CVDT)
	}
	if res.Stats.CVDA != base.Stats.CVDA {
		t.Errorf("CVDA %d after resume, clean run read %d", res.Stats.CVDA, base.Stats.CVDA)
	}

	resumes := h.qpcCounter("qpc_stream_resumes")
	if resumes < 1 {
		t.Fatal("stream recovered without a RESUME being counted")
	}
	if saved := h.qpcCounter("qpc_resume_saved_bytes"); saved <= 0 {
		t.Errorf("resume saved %d bytes; a mid-stream resume must save the delivered prefix", saved)
	}
	replayed := h.dapReg.Counter("dap_stream_replayed_bytes").Value()
	if replayed <= 0 {
		t.Error("DAP replayed nothing; the RESUME should retransmit the unacked tail")
	}
	if bound := resumes * testReplayWindow; replayed > bound {
		t.Errorf("DAP replayed %d bytes across %d resume(s), beyond the %d replay-window bound",
			replayed, resumes, bound)
	}
	if parked := h.dapReg.Counter("dap_streams_parked").Value(); parked < 1 {
		t.Error("DAP never parked the interrupted stream")
	}
	if restarted := h.qpcCounter("qpc_resume_failed"); restarted != 0 {
		t.Errorf("resume fell back to restart %d time(s); the window should have covered it", restarted)
	}
}

// TestResumeDoubleDropStatsExact drops the stream on *every* connection
// after a per-connection byte budget, forcing a resume chain (at least
// two RESUMEs before the stream finishes), and pins volume exactness:
// replayed-window bytes must not double-count into CVDT/CVDA.
func TestResumeDoubleDropStatsExact(t *testing.T) {
	clean := newResumeHarness(t, nil, nil)
	base, err := clean.executeWithin(t, 10*time.Second, streamQuery)
	if err != nil {
		t.Fatal(err)
	}

	h := newResumeHarness(t, nil, nil)
	// Each connection dies after carrying about a third of the stream;
	// every redial gets a fresh budget, so the chain makes progress and
	// fails again at least twice before the EOS lands.
	h.network.SetFault("dap1", &netsim.FaultPlan{DropEachConnAfterBytes: base.Stats.CVDT / 3})
	res, err := h.executeWithin(t, 15*time.Second, streamQuery)
	if err != nil {
		t.Fatalf("query should survive a resume chain: %v", err)
	}
	if len(res.Rows) != len(base.Rows) {
		t.Errorf("got %d rows, clean run %d", len(res.Rows), len(base.Rows))
	}
	if res.Stats.CVDT != base.Stats.CVDT {
		t.Errorf("CVDT %d after %d resumes, clean run moved %d",
			res.Stats.CVDT, h.qpcCounter("qpc_stream_resumes"), base.Stats.CVDT)
	}
	if res.Stats.CVDA != base.Stats.CVDA {
		t.Errorf("CVDA %d, clean run read %d", res.Stats.CVDA, base.Stats.CVDA)
	}
	resumes := h.qpcCounter("qpc_stream_resumes")
	if resumes < 2 {
		t.Errorf("resume chain counted %d resumes, want at least 2", resumes)
	}
	if replayed, bound := h.dapReg.Counter("dap_stream_replayed_bytes").Value(), resumes*testReplayWindow; replayed > bound {
		t.Errorf("replayed %d bytes across %d resumes, beyond the %d window bound", replayed, resumes, bound)
	}
}

// TestResumeExpiredFallsBackToRestart forces the retention TTL to
// expire before the QPC can RESUME: the DAP nacks the unknown stream
// and the QPC restarts the fragment from scratch, discarding the
// already-delivered prefix so the row set — and the logical volume —
// stay exact.
func TestResumeExpiredFallsBackToRestart(t *testing.T) {
	clean := newResumeHarness(t, nil, nil)
	base, err := clean.executeWithin(t, 10*time.Second, streamQuery)
	if err != nil {
		t.Fatal(err)
	}

	h := newResumeHarness(t, nil, func(d *dap.Config) {
		// A parked stream is evicted effectively immediately, so the
		// RESUME always arrives too late.
		d.RetainTTL = time.Nanosecond
	})
	h.network.SetFault("dap1", &netsim.FaultPlan{DropFirstConnAfterBytes: base.Stats.CVDT / 2})
	res, err := h.executeWithin(t, 10*time.Second, streamQuery)
	if err != nil {
		t.Fatalf("query should survive via full restart when the window is gone: %v", err)
	}
	if len(res.Rows) != len(base.Rows) {
		t.Errorf("restarted query returned %d rows, clean run %d", len(res.Rows), len(base.Rows))
	}
	if res.Stats.CVDT != base.Stats.CVDT {
		t.Errorf("CVDT %d after restart, clean run moved %d", res.Stats.CVDT, base.Stats.CVDT)
	}
	if failed := h.qpcCounter("qpc_resume_failed"); failed < 1 {
		t.Error("restart path taken without qpc_resume_failed being counted")
	}
	if wasted := h.qpcCounter("qpc_restart_wasted_bytes"); wasted <= 0 {
		t.Errorf("restart discarded a non-empty prefix but counted %d wasted bytes", wasted)
	}
	if expired := h.dapReg.Counter("dap_stream_retain_expired").Value(); expired < 1 {
		t.Error("DAP never expired the parked stream")
	}
}

// TestResumeDisabledKeepsLegacyFailure pins the ablation baseline: with
// resume disabled on the QPC, a mid-stream drop is fatal again (bounded,
// clean failure — the pre-resume contract).
func TestResumeDisabledKeepsLegacyFailure(t *testing.T) {
	clean := newResumeHarness(t, nil, nil)
	base, err := clean.executeWithin(t, 10*time.Second, streamQuery)
	if err != nil {
		t.Fatal(err)
	}
	h := newResumeHarness(t, func(c *Config) { c.DisableResume = true }, nil)
	h.network.SetFault("dap1", &netsim.FaultPlan{DropFirstConnAfterBytes: base.Stats.CVDT / 2})
	start := time.Now()
	_, err = h.executeWithin(t, 10*time.Second, streamQuery)
	if err == nil {
		t.Fatal("with resume disabled a mid-stream drop must fail the query")
	}
	if wall := time.Since(start); wall > 5*time.Second {
		t.Fatalf("legacy failure took %v, not promptly bounded", wall)
	}
	if resumes := h.qpcCounter("qpc_stream_resumes"); resumes != 0 {
		t.Errorf("resume counted %d times with resume disabled", resumes)
	}
}

// TestResumeTraceSpanSumStillMatchesCVDT extends the PR 2 accounting
// invariant to the recovery path: on a resumed query the trace's net
// bytes must still equal CVDT — the resume span carries zero net bytes,
// and replayed frames are never attributed anywhere.
func TestResumeTraceSpanSumStillMatchesCVDT(t *testing.T) {
	clean := newResumeHarness(t, nil, nil)
	base, err := clean.executeWithin(t, 10*time.Second, streamQuery)
	if err != nil {
		t.Fatal(err)
	}
	h := newResumeHarness(t, nil, nil)
	h.network.SetFault("dap1", &netsim.FaultPlan{DropFirstConnAfterBytes: base.Stats.CVDT / 2})

	q, err := h.srv.Prepare(streamQuery)
	if err != nil {
		t.Fatal(err)
	}
	rows := 0
	stats, trace, err := q.RunTraced(context.Background(), func(types.Tuple) error { rows++; return nil })
	if err != nil {
		t.Fatal(err)
	}
	if h.qpcCounter("qpc_stream_resumes") == 0 {
		t.Fatal("fault did not strike; invariant checked vacuously")
	}
	if got, want := trace.NetBytes(), stats.CVDT; got != want {
		t.Errorf("trace spans carry %d net bytes on a resumed query, CVDT is %d", got, want)
	}
	var sawResume bool
	for _, sp := range trace.Spans() {
		if sp.Name == "resume" {
			sawResume = true
			if sp.NetBytes != 0 {
				t.Errorf("resume span attributed %d net bytes; replay must not count", sp.NetBytes)
			}
		}
	}
	if !sawResume {
		t.Error("resumed query's trace has no resume span")
	}
	_ = rows
}

// TestBreakerForcesDataShippingPlan covers the degraded-planning
// acceptance path: with site1's breaker forced open, EXPLAIN shows the
// fragment re-planned under data shipping with the health-override
// annotation, and closing the breaker restores the code-shipping plan.
func TestBreakerForcesDataShippingPlan(t *testing.T) {
	h := newResumeHarness(t, nil, nil)
	healthy, err := h.srv.Explain(codeShipQuery)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(healthy, "degraded") {
		t.Fatalf("healthy plan already annotated degraded:\n%s", healthy)
	}

	h.srv.Health().ForceOpen("site1")
	degraded, err := h.srv.Explain(codeShipQuery)
	if err != nil {
		t.Fatal(err)
	}
	if want := "[degraded: data shipping forced by site health]"; !strings.Contains(degraded, want) {
		t.Fatalf("EXPLAIN with breaker open should carry %q:\n%s", want, degraded)
	}

	h.srv.Health().Reset("site1")
	restored, err := h.srv.Explain(codeShipQuery)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(restored, "degraded") {
		t.Fatalf("plan still degraded after breaker reset:\n%s", restored)
	}
}

// TestDegradedReplanMidQuery exercises the re-planning path end to end:
// the site refuses exactly enough dials to trip its breaker during
// execution, the QPC re-plans the fragment under data shipping and the
// re-execution succeeds on the recovered link.
func TestDegradedReplanMidQuery(t *testing.T) {
	h := newResumeHarness(t, func(c *Config) { c.Strategy = core.StrategyCodeShip }, nil)
	h.network.SetFault("dap1", &netsim.FaultPlan{RefuseDials: 3})
	res, err := h.executeWithin(t, 10*time.Second, codeShipQuery)
	if err != nil {
		t.Fatalf("query should survive via degraded re-plan: %v", err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("re-planned query returned no rows")
	}
	if replans := h.qpcCounter("qpc_degraded_replans"); replans != 1 {
		t.Errorf("qpc_degraded_replans = %d, want 1", replans)
	}
	var sawDegraded bool
	for _, f := range res.Plan.Fragments {
		if f.Degraded {
			sawDegraded = true
		}
	}
	if !sawDegraded {
		t.Error("executed plan carries no degraded fragment after the re-plan")
	}
}
