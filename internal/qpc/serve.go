package qpc

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"

	"mocha/internal/catalog"
	"mocha/internal/types"
	"mocha/internal/wire"
)

// Serve accepts client connections on l until the listener closes. Each
// client session handles MsgQuery requests: the QPC responds with the
// result schema, streams tuple batches, and finishes with an EOS frame
// carrying the query stats.
func (s *Server) Serve(l net.Listener) error {
	for {
		nc, err := l.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		go func() {
			if err := s.handleClient(nc); err != nil {
				s.cfg.Logf("qpc: client session: %v", err)
			}
		}()
	}
}

// ServeConn handles a single client connection outside Serve's accept
// loop, for hosts that own the listener (e.g. an embedded cluster that
// swaps QPC instances under a stable address).
func (s *Server) ServeConn(nc net.Conn) error { return s.handleClient(nc) }

func (s *Server) handleClient(nc net.Conn) error {
	conn := wire.NewConn(nc)
	defer conn.Close()
	// The session context carries the client's tenant (from HELLO) into
	// the admission queue's fairness accounting.
	ctx := context.Background()
	for {
		t, payload, err := conn.Recv()
		if err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return nil
			}
			return err
		}
		switch t {
		case wire.MsgHello:
			var hello wire.Hello
			if err := wire.DecodeXML(payload, &hello); err != nil {
				return err
			}
			ctx = WithTenant(context.Background(), hello.Tenant)
			ack, err := wire.EncodeXML(&wire.Hello{Role: "qpc", Site: "qpc"})
			if err != nil {
				return err
			}
			if err := conn.Send(wire.MsgHelloAck, ack); err != nil {
				return err
			}
		case wire.MsgQuery:
			if err := s.serveQuery(ctx, conn, string(payload)); err != nil {
				conn.SendError(err)
			}
		case wire.MsgClose:
			return nil
		default:
			conn.SendError(errors.New("qpc: unexpected " + t.String()))
		}
	}
}

func (s *Server) serveQuery(ctx context.Context, conn *wire.Conn, sql string) error {
	// EXPLAIN ANALYZE <query> executes the query, discarding rows, and
	// returns the plan with the measured breakdown and span timeline.
	// Checked before the plain EXPLAIN prefix, which it extends.
	if rest, ok := strings.CutPrefix(strings.TrimSpace(sql), "EXPLAIN ANALYZE "); ok {
		text, err := s.ExplainAnalyze(ctx, rest)
		if err != nil {
			return err
		}
		return s.sendTextResult(conn, "plan", text)
	}
	// EXPLAIN <query> returns the optimizer's plan rendering as a
	// one-column result instead of executing.
	if rest, ok := strings.CutPrefix(strings.TrimSpace(sql), "EXPLAIN "); ok {
		return s.serveExplain(conn, rest)
	}
	// SHOW METRICS dumps the server's metrics registry.
	if strings.EqualFold(strings.TrimSpace(sql), "SHOW METRICS") {
		return s.sendTextResult(conn, "metric", s.cfg.Metrics.Render())
	}
	// DESCRIBE <resource> returns the catalog's RDF document for a table
	// or operator (section 3.5's (URI, RDF) resource descriptions).
	if rest, ok := strings.CutPrefix(strings.TrimSpace(sql), "DESCRIBE "); ok {
		return s.serveDescribe(conn, strings.TrimSpace(rest))
	}
	// SHOW TABLES lists the catalog's registered relations.
	if strings.EqualFold(strings.TrimSpace(sql), "SHOW TABLES") {
		return s.sendTextResult(conn, "table", strings.Join(s.cfg.Cat.TableNames(), "\n"))
	}
	// VERIFY <class> re-runs the static verifier on a repository class
	// and reports the verdict, capability manifest and static bounds.
	if rest, ok := strings.CutPrefix(strings.TrimSpace(sql), "VERIFY "); ok {
		text, err := s.VerifyClass(strings.TrimSpace(rest))
		if err != nil {
			return err
		}
		return s.sendTextResult(conn, "verify", text)
	}
	// SHOW ROLLOUTS reports every rollout this server has run, newest
	// first, with the abort evidence for auto-rollbacks.
	if strings.EqualFold(strings.TrimSpace(sql), "SHOW ROLLOUTS") {
		return s.sendTextResult(conn, "rollout", s.RolloutReport())
	}
	// SHOW RELEASES [<class>] lists the release history of one class or
	// of the whole repository: tag, digest, capability manifest, publish
	// time and the active/canary markers.
	if strings.EqualFold(strings.TrimSpace(sql), "SHOW RELEASES") {
		text, err := s.ReleasesReport("")
		if err != nil {
			return err
		}
		return s.sendTextResult(conn, "release", text)
	}
	if rest, ok := strings.CutPrefix(strings.TrimSpace(sql), "SHOW RELEASES "); ok {
		text, err := s.ReleasesReport(strings.TrimSpace(rest))
		if err != nil {
			return err
		}
		return s.sendTextResult(conn, "release", text)
	}
	// ROLLOUT <class> <tag> AT <fraction> starts canarying a staged
	// release on that fraction of eligible queries.
	if rest, ok := strings.CutPrefix(strings.TrimSpace(sql), "ROLLOUT "); ok {
		return s.serveRollout(conn, rest)
	}
	// ROLLBACK <class> manually withdraws a running rollout's canary.
	if rest, ok := strings.CutPrefix(strings.TrimSpace(sql), "ROLLBACK "); ok {
		text, err := s.AbortRollout(strings.TrimSpace(rest), "manual ROLLBACK")
		if err != nil {
			return err
		}
		return s.sendTextResult(conn, "rollout", text)
	}
	// PROMOTE <class> manually promotes a running rollout's canary to
	// the active release.
	if rest, ok := strings.CutPrefix(strings.TrimSpace(sql), "PROMOTE "); ok {
		text, err := s.PromoteRollout(strings.TrimSpace(rest))
		if err != nil {
			return err
		}
		return s.sendTextResult(conn, "rollout", text)
	}
	q, err := s.Prepare(sql)
	if err != nil {
		return err
	}
	schemaMsg := wire.SchemaToMsg(q.Schema)
	data, err := wire.EncodeXML(&schemaMsg)
	if err != nil {
		return err
	}
	if err := conn.Send(wire.MsgResultSchema, data); err != nil {
		return err
	}
	w := wire.NewBatchWriter(conn)
	stats, err := q.RunContext(ctx, w.Write)
	if err != nil {
		return err
	}
	if err := w.Flush(); err != nil {
		return err
	}
	statsData, err := wire.EncodeXML(stats)
	if err != nil {
		return err
	}
	return conn.Send(wire.MsgEOS, statsData)
}

// serveRollout parses "ROLLOUT <class> <tag> AT <fraction>" (fraction
// as a percentage, e.g. "25", or a ratio, e.g. "0.25") and starts the
// rollout.
func (s *Server) serveRollout(conn *wire.Conn, rest string) error {
	fields := strings.Fields(rest)
	if len(fields) != 4 || !strings.EqualFold(fields[2], "AT") {
		return errors.New("qpc: usage: ROLLOUT <class> <tag> AT <fraction>")
	}
	frac, err := strconv.ParseFloat(strings.TrimSuffix(fields[3], "%"), 64)
	if err != nil {
		return fmt.Errorf("qpc: bad rollout fraction %q: %w", fields[3], err)
	}
	if frac > 1 {
		frac /= 100 // "25" and "25%" mean a quarter of eligible queries
	}
	text, err := s.StartRollout(fields[0], fields[1], frac)
	if err != nil {
		return err
	}
	return s.sendTextResult(conn, "rollout", text)
}

func (s *Server) serveDescribe(conn *wire.Conn, name string) error {
	var doc []byte
	if tbl, ok := s.cfg.Cat.Table(name); ok {
		d, err := catalog.TableRDF(tbl)
		if err != nil {
			return err
		}
		doc = d
	} else if op, ok := s.cfg.Cat.Ops().Lookup(name); ok {
		d, err := catalog.OperatorRDF(op)
		if err != nil {
			return err
		}
		doc = d
	} else {
		return fmt.Errorf("qpc: no catalog resource named %q", name)
	}
	return s.sendTextResult(conn, "rdf", string(doc))
}

func (s *Server) serveExplain(conn *wire.Conn, sql string) error {
	text, err := s.Explain(sql)
	if err != nil {
		return err
	}
	return s.sendTextResult(conn, "plan", text)
}

// sendTextResult streams a multi-line string as a one-column result.
func (s *Server) sendTextResult(conn *wire.Conn, column, text string) error {
	schema := types.NewSchema(types.Column{Name: column, Kind: types.KindString})
	msg := wire.SchemaToMsg(schema)
	data, err := wire.EncodeXML(&msg)
	if err != nil {
		return err
	}
	if err := conn.Send(wire.MsgResultSchema, data); err != nil {
		return err
	}
	w := wire.NewBatchWriter(conn)
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if err := w.Write(types.Tuple{types.String_(line)}); err != nil {
			return err
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}
	statsData, err := wire.EncodeXML(&QueryStats{})
	if err != nil {
		return err
	}
	return conn.Send(wire.MsgEOS, statsData)
}
