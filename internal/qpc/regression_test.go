package qpc

// Regression coverage for QueryStats accounting under retried fragment
// setup. A flaky-then-recover link kills the QPC's first connection to a
// site partway through deployment; the retry must start its accounting
// from scratch so the aborted attempt's cache checks and shipped classes
// never inflate the query's counters (the double-count this pins was:
// partials[i] accumulated across retry attempts before being merged).

import (
	"testing"
	"time"

	"mocha/internal/core"
	"mocha/internal/netsim"
)

// codeShipQuery ships AvgEnergy's class to site1 before streaming.
const codeShipQuery = `SELECT time, AvgEnergy(image) FROM Rasters WHERE AvgEnergy(image) < 200`

func forceCodeShip(c *Config) {
	c.Strategy = core.StrategyCodeShip
	// Compiling the shipped operator on the DAP makes its first response
	// slow under -race; keep the frame bound comfortably above that.
	c.FrameTimeout = 2 * time.Second
}

func TestFlakyThenRecoverStatsExact(t *testing.T) {
	// Clean baseline: what one execution of the query legitimately moves.
	h0 := newChaosHarness(t, forceCodeShip)
	base, err := h0.executeWithin(t, 5*time.Second, codeShipQuery)
	if err != nil {
		t.Fatal(err)
	}
	if base.Stats.CodeClassesShipped == 0 {
		t.Fatal("baseline shipped no code; the regression needs a code-shipping query")
	}
	// Every code reference in the plan is either shipped or a cache hit.
	refs := base.Stats.CodeClassesShipped + base.Stats.CacheHits

	// Sweep the drop threshold across the deployment exchange: small
	// values kill the connection during HELLO/code-check, larger ones
	// during or after DEPLOY_CODE. Wherever the first connection dies,
	// the retried query must report exactly the clean run's volumes.
	recovered := 0
	for _, threshold := range []int64{64, 256, 1024, 4096, 16384} {
		h := newChaosHarness(t, forceCodeShip)
		h.network.SetFault("dap1", &netsim.FaultPlan{DropFirstConnAfterBytes: threshold})
		res, err := h.executeWithin(t, 5*time.Second, codeShipQuery)
		if err != nil {
			// The drop struck after activation, where retrying could
			// duplicate source work — a clean, prompt failure is the
			// correct outcome there.
			t.Logf("threshold %d: failed cleanly: %v", threshold, err)
			continue
		}
		recovered++
		if res.Stats.CVDT != base.Stats.CVDT {
			t.Errorf("threshold %d: CVDT %d after recovery, clean run moved %d",
				threshold, res.Stats.CVDT, base.Stats.CVDT)
		}
		if res.Stats.CVDA != base.Stats.CVDA {
			t.Errorf("threshold %d: CVDA %d after recovery, clean run read %d",
				threshold, res.Stats.CVDA, base.Stats.CVDA)
		}
		// The aborted attempt may have populated the DAP's code cache, so
		// the retry can legitimately ship fewer classes — but the total
		// refs are invariant, and counting the wasted attempt again would
		// push shipped bytes above the clean run's.
		if got := res.Stats.CodeClassesShipped + res.Stats.CacheHits; got != refs {
			t.Errorf("threshold %d: classes shipped %d + cache hits %d = %d, want %d",
				threshold, res.Stats.CodeClassesShipped, res.Stats.CacheHits, got, refs)
		}
		if res.Stats.CodeBytesShipped > base.Stats.CodeBytesShipped {
			t.Errorf("threshold %d: %d code bytes counted, clean run shipped %d — retried attempt double-counted",
				threshold, res.Stats.CodeBytesShipped, base.Stats.CodeBytesShipped)
		}
	}
	if recovered == 0 {
		t.Fatal("no threshold in the sweep recovered; the fault never struck during deployment")
	}
}

// TestFlakyThenRecoverWastedBytesMetric verifies the wasted bytes of an
// aborted deployment attempt surface in the process metric rather than
// the query's stats.
func TestFlakyThenRecoverWastedBytesMetric(t *testing.T) {
	h := newChaosHarness(t, forceCodeShip)
	// Large enough that HELLO survives but the code-deployment exchange
	// crosses the threshold mid-ship.
	h.network.SetFault("dap1", &netsim.FaultPlan{DropFirstConnAfterBytes: 256})
	res, err := h.executeWithin(t, 5*time.Second, codeShipQuery)
	if err != nil {
		t.Skipf("drop struck post-activation: %v", err)
	}
	wasted := h.srv.Metrics().Counter("qpc_retry_wasted_code_bytes").Value()
	retries := h.srv.Metrics().Counter("qpc_retries").Value()
	if retries == 0 {
		t.Fatal("query succeeded without retrying; fault did not strike")
	}
	t.Logf("retries=%d wasted_code_bytes=%d shipped=%d", retries, wasted, res.Stats.CodeBytesShipped)
	if wasted < 0 {
		t.Fatalf("wasted code bytes negative: %d", wasted)
	}
}
