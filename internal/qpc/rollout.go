package qpc

import (
	"context"
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"sync"
	"time"

	"mocha/internal/core"
	"mocha/internal/obs"
	"mocha/internal/vm"
	"mocha/internal/wire"
)

// RolloutPolicy tunes the canary controller's divergence thresholds.
// The zero value takes defaults.
type RolloutPolicy struct {
	// MinSamples is how many canary/active comparisons must accumulate
	// before the latency-regression check can abort a rollout (digest
	// divergence aborts immediately regardless). Default 5.
	MinSamples int
	// LatencyFactor aborts the rollout when the canary's smoothed
	// per-operator self time exceeds this multiple of the active
	// release's. Default 3.0.
	LatencyFactor float64
	// PromoteAfter promotes the canary to active once this many clean
	// result-digest matches accumulate with no divergence. Negative
	// means never auto-promote (PROMOTE <class> stays available).
	// Default 16.
	PromoteAfter int
	// MaxCanaryErrors is how many canary-only execution failures (the
	// active release succeeds, the canary traps or errors) are tolerated
	// before auto-rollback. Default 0: the first one aborts.
	MaxCanaryErrors int
}

func (p RolloutPolicy) withDefaults() RolloutPolicy {
	if p.MinSamples <= 0 {
		p.MinSamples = 5
	}
	if p.LatencyFactor <= 0 {
		p.LatencyFactor = 3.0
	}
	if p.PromoteAfter == 0 {
		p.PromoteAfter = 16
	}
	return p
}

// RolloutAbortedError is the typed evidence record of an auto-rollback:
// which release was withdrawn, why, and the observation that condemned
// it. SHOW ROLLOUTS renders it; tests assert on it.
type RolloutAbortedError struct {
	Class  string
	Tag    string
	Digest string
	// Reason is the trigger: result-digest divergence, canary execution
	// failure, latency regression, or a manual ROLLBACK.
	Reason string
	// SQL is the query that exposed the divergence, when one did.
	SQL string
	// WantDigest/GotDigest carry the mismatched result digests for a
	// digest divergence (want = active release's output).
	WantDigest string
	GotDigest  string
	// CanaryErr is the canary-side execution error, when that was the
	// trigger.
	CanaryErr string
}

func (e *RolloutAbortedError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "qpc: rollout of %s@%s aborted: %s", e.Class, e.Tag, e.Reason)
	if e.SQL != "" {
		fmt.Fprintf(&b, " on %q", e.SQL)
	}
	if e.WantDigest != "" || e.GotDigest != "" {
		fmt.Fprintf(&b, " (active result digest %s, canary %s)", e.WantDigest, e.GotDigest)
	}
	if e.CanaryErr != "" {
		fmt.Fprintf(&b, ": %s", e.CanaryErr)
	}
	return b.String()
}

// Rollout status values.
const (
	rolloutRunning  = "running"
	rolloutAborted  = "aborted"
	rolloutPromoted = "promoted"
)

// oracleCap bounds the per-rollout result-digest oracle map.
const oracleCap = 256

// staticCostRefBytes is the reference input size at which two releases'
// static budgets are compared: per-trip units are scaled as if every
// input-dependent loop stepped once per byte of a 1 KiB argument.
const staticCostRefBytes = 1024

// instrsPerMicro converts static instruction units into the judge's µs
// scale (50 interpreted MVM instructions per microsecond, matching the
// optimizer's defaultInstrsPerMS).
const instrsPerMicro = 50.0

// staticUnits folds a release's static cost summary to one comparable
// number: fixed units plus per-trip units at the reference input size.
func staticUnits(c vm.CostInfo) int64 {
	return c.FixedUnits + c.PerTripUnits*staticCostRefBytes
}

// oracleEntry is the recorded active-release behaviour for one SQL
// text: its result digest and smoothed operator self time. A query
// whose active runs ever produced two different digests is marked
// unstable (nondeterministic output order or values) and excluded from
// canary comparison.
type oracleEntry struct {
	digest   string
	micros   float64
	runs     int
	unstable bool
}

// rolloutState is one rollout's full lifecycle record.
type rolloutState struct {
	Class    string // display name
	Tag      string
	Digest   string
	Caps     string
	Cost     string // canary's static cost stamp, propagated into overrides
	Fraction float64

	// CanaryStaticUnits/ActiveStaticUnits are the releases' verifier-
	// derived worst-case instruction budgets at the reference input size
	// — the judge's prior. A canary whose static budget already exceeds
	// LatencyFactor× the active's seeds the latency EWMAs from these
	// units, so one confirming live sample aborts the rollout instead of
	// waiting for MinSamples queries to burn through a known-costly v2.
	CanaryStaticUnits int64
	ActiveStaticUnits int64

	StartedAt time.Time
	EndedAt   time.Time
	Status    string
	Abort     *RolloutAbortedError

	CanaryRuns   int // queries routed to the canary release
	ShadowRuns   int // active-release shadow runs for comparison
	Comparisons  int // result-digest comparisons performed
	Matches      int // comparisons that matched
	CanaryErrors int // canary-only execution failures

	canaryEWMA     float64 // smoothed canary op self-time, µs
	activeEWMA     float64 // smoothed active op self-time, µs
	latencySamples int

	oracles map[string]*oracleEntry
}

func (st *rolloutState) running() bool { return st.Status == rolloutRunning }

// canaryDecision pins one query to the canary release: the routing
// decision is made exactly once per query (RunTraced hashes its freshly
// minted query ID against the rollout fraction), so every resume,
// replica failover and restart of the query's streams re-deploys the
// same release digest — versions never mix within a query.
type canaryDecision struct {
	st        *rolloutState
	overrides map[string]core.CodeRef
}

// runOutcome summarizes one release's execution of a query for the
// controller: result digest, summed op:* self time, or the error.
type runOutcome struct {
	digest string
	micros float64
	err    error
}

// rolloutController owns rollout lifecycle state on the QPC. One
// rollout may run per class; histories are kept for SHOW ROLLOUTS.
type rolloutController struct {
	mu      sync.Mutex
	srv     *Server
	policy  RolloutPolicy
	current map[string]*rolloutState // lower class → latest rollout
	history []*rolloutState
}

func newRolloutController(srv *Server, policy RolloutPolicy) *rolloutController {
	return &rolloutController{
		srv:     srv,
		policy:  policy.withDefaults(),
		current: make(map[string]*rolloutState),
	}
}

// hashFraction maps a query ID onto [0,1) deterministically.
func hashFraction(qid string) float64 {
	h := fnv.New64a()
	h.Write([]byte(qid))
	return float64(h.Sum64()>>11) / float64(1<<53)
}

// planUsesClass reports whether any fragment of the plan ships code for
// the class. Data-shipped plans evaluate operators natively at the QPC
// and carry no code refs, so they are never canary-eligible.
func planUsesClass(plan *core.Plan, lowerClass string) bool {
	for _, f := range plan.Fragments {
		for _, ref := range f.Code {
			if strings.ToLower(ref.Name) == lowerClass {
				return true
			}
		}
	}
	return false
}

// start begins a rollout: the release becomes the class's canary and
// the given fraction of eligible queries route to it.
func (c *rolloutController) start(class, tag string, fraction float64) (*rolloutState, error) {
	if fraction <= 0 || fraction > 1 {
		return nil, fmt.Errorf("qpc: rollout fraction %v outside (0, 1]", fraction)
	}
	repo := c.srv.cfg.Cat.Repo()
	rel, ok := repo.GetRelease(class, tag)
	if !ok {
		return nil, fmt.Errorf("qpc: class %q has no release tagged %q", class, tag)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	key := strings.ToLower(class)
	if st := c.current[key]; st != nil && st.running() {
		return nil, fmt.Errorf("qpc: a rollout of %s@%s is already running", st.Class, st.Tag)
	}
	if _, err := repo.SetCanary(class, tag); err != nil {
		return nil, err
	}
	st := &rolloutState{
		Class:             rel.Class,
		Tag:               rel.Tag,
		Digest:            rel.Digest,
		Caps:              strings.Join(rel.Caps, ","),
		Cost:              rel.Cost.String(),
		Fraction:          fraction,
		CanaryStaticUnits: staticUnits(rel.Cost),
		StartedAt:         time.Now(),
		Status:            rolloutRunning,
		oracles:           make(map[string]*oracleEntry),
	}
	if act, ok := repo.ActiveRelease(class); ok {
		st.ActiveStaticUnits = staticUnits(act.Cost)
	}
	// Static prior: when the canary's own verifier-derived budget is
	// already past the abort threshold, seed the latency EWMAs from the
	// static units and leave the judge one sample short of MinSamples —
	// the first confirming live comparison aborts, instead of MinSamples
	// queries paying for a canary the verifier had already priced as a
	// regression. A canary within the threshold starts unseeded: live
	// samples alone judge it.
	if st.ActiveStaticUnits > 0 &&
		float64(st.CanaryStaticUnits) > c.policy.LatencyFactor*float64(st.ActiveStaticUnits) {
		st.canaryEWMA = float64(st.CanaryStaticUnits) / instrsPerMicro
		st.activeEWMA = float64(st.ActiveStaticUnits) / instrsPerMicro
		if c.policy.MinSamples > 1 {
			st.latencySamples = c.policy.MinSamples - 1
		}
		c.srv.cfg.Logf("qpc: rollout %s@%s: static budget %d units exceeds %.1f× active %d units; latency prior armed",
			rel.Class, rel.Tag, st.CanaryStaticUnits, c.policy.LatencyFactor, st.ActiveStaticUnits)
	}
	c.current[key] = st
	c.history = append(c.history, st)
	c.srv.cfg.Logf("qpc: rollout started: %s@%s (digest %s) at %.0f%%", st.Class, st.Tag, st.Digest, fraction*100)
	return st, nil
}

// route decides, once per query, whether this execution runs the canary
// release. nil means the active release serves it.
func (c *rolloutController) route(plan *core.Plan, qid string) *canaryDecision {
	if c == nil || plan == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for key, st := range c.current {
		if !st.running() || !planUsesClass(plan, key) {
			continue
		}
		if hashFraction(qid) >= st.Fraction {
			return nil
		}
		return &canaryDecision{
			st: st,
			overrides: map[string]core.CodeRef{
				key: {Name: st.Class, Version: st.Tag, Checksum: st.Digest, Caps: st.Caps, Cost: st.Cost},
			},
		}
	}
	return nil
}

const ewmaAlpha = 0.3

func ewma(prev, sample float64) float64 {
	if prev == 0 {
		return sample
	}
	return prev + ewmaAlpha*(sample-prev)
}

// recordOracleLocked folds one successful active-release run into the
// rollout's oracle. Conflicting digests for the same SQL mark the query
// unstable: its output is nondeterministic, so it can never condemn (or
// acquit) a canary.
func (st *rolloutState) recordOracleLocked(sql string, act runOutcome) {
	st.activeEWMA = ewma(st.activeEWMA, act.micros)
	e := st.oracles[sql]
	if e == nil {
		if len(st.oracles) < oracleCap {
			st.oracles[sql] = &oracleEntry{digest: act.digest, micros: act.micros, runs: 1}
		}
		return
	}
	e.runs++
	if e.digest != act.digest {
		e.unstable = true
		return
	}
	e.micros = ewma(e.micros, act.micros)
}

// observeActive records an active-routed query's outcome as oracle
// material for any rollout its plan is eligible for.
func (c *rolloutController) observeActive(plan *core.Plan, sql, digest string, micros float64, err error) {
	if c == nil || err != nil || sql == "" {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for key, st := range c.current {
		if st.running() && planUsesClass(plan, key) {
			st.recordOracleLocked(sql, runOutcome{digest: digest, micros: micros})
			return
		}
	}
}

// checkOracleErr counts a canary run that failed before any comparison
// was possible (the shadow run decides what the failure means).
func (c *rolloutController) checkOracleErr(dec *canaryDecision) {
	c.mu.Lock()
	dec.st.CanaryRuns++
	c.mu.Unlock()
}

// oracle verdicts for a canary run checked against recorded history.
type oracleVerdict int

const (
	oracleNeedShadow oracleVerdict = iota // no usable oracle, or mismatch to confirm
	oracleMatch                           // matched the recorded active digest
	oracleUnstable                        // SQL output is nondeterministic; no comparison possible
)

// checkOracle compares a successful canary run against the recorded
// active oracle for its SQL. A match is a full comparison (counted,
// fed into the latency check, may promote or abort); a mismatch or a
// missing oracle demands an authoritative shadow run before judgment.
func (c *rolloutController) checkOracle(dec *canaryDecision, sql string, can runOutcome) oracleVerdict {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := dec.st
	st.CanaryRuns++
	e := st.oracles[sql]
	if e == nil {
		return oracleNeedShadow
	}
	if e.unstable {
		return oracleUnstable
	}
	if e.digest != can.digest {
		return oracleNeedShadow
	}
	c.recordMatchLocked(st, can.micros, e.micros)
	return oracleMatch
}

// judge decides delivery after a shadow run of the active release, and
// advances the rollout state machine: digest mismatch or a canary-only
// failure is a divergence (auto-rollback); a match feeds promotion.
// Returns whether the canary's buffered rows may be delivered.
func (c *rolloutController) judge(dec *canaryDecision, sql string, can, act runOutcome) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := dec.st
	st.ShadowRuns++
	if act.err == nil {
		st.recordOracleLocked(sql, act)
	}
	switch {
	case can.err != nil && act.err == nil:
		// Canary-only failure: the active release handles this query,
		// the canary does not. That is behavioural divergence.
		if st.running() {
			st.CanaryErrors++
			c.srv.met.rolloutDivergences.Inc()
			if st.CanaryErrors > c.policy.MaxCanaryErrors {
				c.abortLocked(st, &RolloutAbortedError{
					Class: st.Class, Tag: st.Tag, Digest: st.Digest,
					Reason:    "canary execution failed where active succeeded",
					SQL:       sql,
					CanaryErr: can.err.Error(),
				})
			}
		}
		return false
	case can.err != nil:
		// Both releases failed: not the canary's fault; surface the
		// active release's error.
		return false
	case act.err != nil:
		// Canary succeeded where active failed (e.g. a site died between
		// the runs). No judgment — deliver the rows we have.
		return true
	}
	if st.running() {
		st.Comparisons++
	}
	if can.digest == act.digest {
		if st.running() {
			st.Matches++
			c.latencyAndPromotionLocked(st, can.micros, act.micros)
		}
		return true
	}
	// Result-digest divergence: the canary computed different answers.
	// The buffered active rows serve the client (byte-identical to the
	// v1 oracle), and the rollout rolls back with the evidence.
	if st.running() {
		c.srv.met.rolloutDivergences.Inc()
		c.abortLocked(st, &RolloutAbortedError{
			Class: st.Class, Tag: st.Tag, Digest: st.Digest,
			Reason:     "result digest divergence",
			SQL:        sql,
			WantDigest: act.digest,
			GotDigest:  can.digest,
		})
	}
	return false
}

// recordMatchLocked counts a clean oracle match and runs the latency
// and promotion checks.
func (c *rolloutController) recordMatchLocked(st *rolloutState, canMicros, actMicros float64) {
	if !st.running() {
		return
	}
	st.Comparisons++
	st.Matches++
	c.latencyAndPromotionLocked(st, canMicros, actMicros)
}

func (c *rolloutController) latencyAndPromotionLocked(st *rolloutState, canMicros, actMicros float64) {
	st.canaryEWMA = ewma(st.canaryEWMA, canMicros)
	st.activeEWMA = ewma(st.activeEWMA, actMicros)
	st.latencySamples++
	if st.latencySamples >= c.policy.MinSamples && st.activeEWMA > 0 &&
		st.canaryEWMA > c.policy.LatencyFactor*st.activeEWMA {
		c.srv.met.rolloutDivergences.Inc()
		c.abortLocked(st, &RolloutAbortedError{
			Class: st.Class, Tag: st.Tag, Digest: st.Digest,
			Reason: fmt.Sprintf("latency regression: canary operator self-time %.0fµs > %.1f× active %.0fµs",
				st.canaryEWMA, c.policy.LatencyFactor, st.activeEWMA),
		})
		return
	}
	if c.policy.PromoteAfter > 0 && st.Matches >= c.policy.PromoteAfter {
		c.promoteLocked(st)
	}
}

// abortLocked rolls the rollout back: the canary pointer is cleared (so
// no new query routes to the withdrawn release; in-flight canary
// queries stay pinned by digest and finish), the evidence is recorded
// for SHOW ROLLOUTS, and every site's code cache is asked — best
// effort, asynchronously — to drop the withdrawn blob by digest.
func (c *rolloutController) abortLocked(st *rolloutState, why *RolloutAbortedError) {
	if !st.running() {
		return
	}
	st.Status = rolloutAborted
	st.Abort = why
	st.EndedAt = time.Now()
	c.srv.cfg.Cat.Repo().ClearCanary(st.Class)
	c.srv.met.rolloutAborts.Inc()
	c.srv.cfg.Logf("qpc: %v", why)
	go c.srv.invalidateSites([]string{st.Digest})
}

// promoteLocked ends the rollout successfully: the canary release
// becomes the class's active version. Plans prepared before promotion
// keep their old digest refs and stay consistent; new plans pick up the
// promoted release.
func (c *rolloutController) promoteLocked(st *rolloutState) {
	if !st.running() {
		return
	}
	if _, err := c.srv.cfg.Cat.Repo().Promote(st.Class, st.Tag); err != nil {
		c.srv.cfg.Logf("qpc: promote %s@%s: %v", st.Class, st.Tag, err)
		return
	}
	st.Status = rolloutPromoted
	st.EndedAt = time.Now()
	c.srv.met.rolloutPromotions.Inc()
	c.srv.cfg.Logf("qpc: rollout promoted: %s@%s is now active after %d clean comparisons",
		st.Class, st.Tag, st.Matches)
}

// abort performs a manual ROLLBACK.
func (c *rolloutController) abort(class, reason string) (*rolloutState, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.current[strings.ToLower(class)]
	if st == nil || !st.running() {
		return nil, fmt.Errorf("qpc: no running rollout for class %q", class)
	}
	c.abortLocked(st, &RolloutAbortedError{
		Class: st.Class, Tag: st.Tag, Digest: st.Digest, Reason: reason,
	})
	return st, nil
}

// promote performs a manual PROMOTE.
func (c *rolloutController) promote(class string) (*rolloutState, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.current[strings.ToLower(class)]
	if st == nil || !st.running() {
		return nil, fmt.Errorf("qpc: no running rollout for class %q", class)
	}
	c.promoteLocked(st)
	if st.Status != rolloutPromoted {
		return nil, fmt.Errorf("qpc: promote %s@%s failed", st.Class, st.Tag)
	}
	return st, nil
}

// state returns the latest rollout for a class (any status).
func (c *rolloutController) state(class string) *rolloutState {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.current[strings.ToLower(class)]
}

// report renders SHOW ROLLOUTS: every rollout this server has run,
// newest first, with the abort evidence when one rolled back.
func (c *rolloutController) report() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.history) == 0 {
		return "no rollouts"
	}
	var b strings.Builder
	for i := len(c.history) - 1; i >= 0; i-- {
		st := c.history[i]
		fmt.Fprintf(&b, "rollout %s@%s digest %s at %.0f%% status %s\n",
			st.Class, st.Tag, st.Digest, st.Fraction*100, st.Status)
		fmt.Fprintf(&b, "  started %s", st.StartedAt.Format(time.RFC3339))
		if !st.EndedAt.IsZero() {
			fmt.Fprintf(&b, "  ended %s", st.EndedAt.Format(time.RFC3339))
		}
		b.WriteString("\n")
		fmt.Fprintf(&b, "  canary queries %d (shadow runs %d), comparisons %d, matches %d, canary errors %d\n",
			st.CanaryRuns, st.ShadowRuns, st.Comparisons, st.Matches, st.CanaryErrors)
		if st.CanaryStaticUnits > 0 || st.ActiveStaticUnits > 0 {
			fmt.Fprintf(&b, "  static budget: canary %d units, active %d units (at %dB reference input)\n",
				st.CanaryStaticUnits, st.ActiveStaticUnits, staticCostRefBytes)
		}
		if st.Abort != nil {
			fmt.Fprintf(&b, "  abort: %s", st.Abort.Reason)
			if st.Abort.SQL != "" {
				fmt.Fprintf(&b, " on %q", st.Abort.SQL)
			}
			b.WriteString("\n")
			if st.Abort.WantDigest != "" || st.Abort.GotDigest != "" {
				fmt.Fprintf(&b, "  evidence: active result digest %s, canary result digest %s\n",
					st.Abort.WantDigest, st.Abort.GotDigest)
			}
			if st.Abort.CanaryErr != "" {
				fmt.Fprintf(&b, "  evidence: canary error: %s\n", st.Abort.CanaryErr)
			}
		}
	}
	return strings.TrimRight(b.String(), "\n")
}

// invalidateSites asks every catalog site to drop the given release
// digests from its code cache — the fleet-wide half of a rollback.
// Best effort: a site that is down simply misses the invalidation (its
// digest-keyed cache entry is inert; nothing references it anymore).
func (s *Server) invalidateSites(digests []string) {
	var wg sync.WaitGroup
	for _, site := range s.cfg.Cat.Sites() {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			ds, err := s.openSession(ctx, name, "")
			if err != nil {
				s.cfg.Logf("qpc: cache invalidation at %s: %v", name, err)
				return
			}
			defer ds.close()
			payload, err := wire.EncodeXML(&wire.CodeInvalidate{Digests: digests})
			if err != nil {
				return
			}
			if err := ds.conn.Send(wire.MsgCodeInvalidate, payload); err != nil {
				s.cfg.Logf("qpc: cache invalidation at %s: %v", name, err)
				return
			}
			data, err := ds.conn.Expect(wire.MsgCodeInvalidateAck)
			if err != nil {
				s.cfg.Logf("qpc: cache invalidation at %s: %v", name, err)
				return
			}
			var ack wire.CodeInvalidateAck
			if err := wire.DecodeXML(data, &ack); err == nil && ack.Dropped > 0 {
				s.cfg.Logf("qpc: site %s dropped %d withdrawn class release(s)", name, ack.Dropped)
			}
		}(site.Name)
	}
	wg.Wait()
}

// StartRollout begins canarying a staged release: fraction of the
// queries whose plans ship the class route to it, each compared against
// the active release's behaviour.
func (s *Server) StartRollout(class, tag string, fraction float64) (string, error) {
	st, err := s.rollouts.start(class, tag, fraction)
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("rollout started: %s@%s (digest %s) at %.0f%% of eligible queries",
		st.Class, st.Tag, st.Digest, st.Fraction*100), nil
}

// AbortRollout manually rolls a running rollout back.
func (s *Server) AbortRollout(class, reason string) (string, error) {
	st, err := s.rollouts.abort(class, reason)
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("rollout of %s@%s rolled back", st.Class, st.Tag), nil
}

// PromoteRollout manually promotes a running rollout's canary to
// active.
func (s *Server) PromoteRollout(class string) (string, error) {
	st, err := s.rollouts.promote(class)
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("rollout promoted: %s@%s is now active", st.Class, st.Tag), nil
}

// RolloutReport renders SHOW ROLLOUTS.
func (s *Server) RolloutReport() string { return s.rollouts.report() }

// RolloutAbort returns the typed abort evidence for a class's latest
// rollout, or nil when it has not aborted.
func (s *Server) RolloutAbort(class string) *RolloutAbortedError {
	st := s.rollouts.state(class)
	if st == nil {
		return nil
	}
	s.rollouts.mu.Lock()
	defer s.rollouts.mu.Unlock()
	return st.Abort
}

// RolloutStatus reports a class's latest rollout status ("running",
// "aborted", "promoted"), or "" when none was ever started.
func (s *Server) RolloutStatus(class string) string {
	st := s.rollouts.state(class)
	if st == nil {
		return ""
	}
	s.rollouts.mu.Lock()
	defer s.rollouts.mu.Unlock()
	return st.Status
}

// ReleasesReport renders the release history of one class — or of every
// class when name is empty — with tag, digest, capability manifest,
// publish time and the active/canary markers (SHOW RELEASES and the
// mocha-cli releases verbs).
func (s *Server) ReleasesReport(name string) (string, error) {
	repo := s.cfg.Cat.Repo()
	var classes []string
	if name != "" {
		if _, ok := repo.GetRelease(name, ""); !ok && len(repo.Releases(name)) == 0 {
			return "", fmt.Errorf("qpc: no class named %q in the code repository", name)
		}
		classes = []string{name}
	} else {
		classes = repo.Names()
	}
	sort.Strings(classes)
	var b strings.Builder
	for _, cls := range classes {
		rels := repo.Releases(cls)
		if len(rels) == 0 {
			continue
		}
		active, _ := repo.ActiveRelease(cls)
		canary, _ := repo.CanaryRelease(cls)
		fmt.Fprintf(&b, "class %s (%d releases)\n", rels[0].Class, len(rels))
		for _, rel := range rels {
			caps := strings.Join(rel.Caps, ",")
			if caps == "" {
				caps = "(none)"
			}
			marker := ""
			if active != nil && active.Digest == rel.Digest {
				marker = "  [active]"
			}
			if canary != nil && canary.Digest == rel.Digest {
				marker += "  [canary]"
			}
			fmt.Fprintf(&b, "  tag %-12s digest %s  caps %s  published %s%s\n",
				rel.Tag, rel.Digest, caps, rel.Published.Format(time.RFC3339), marker)
		}
	}
	if b.Len() == 0 {
		return "no classes in the code repository", nil
	}
	return strings.TrimRight(b.String(), "\n"), nil
}

// opSelfMicros sums a trace's op:* operator self-times: the per-operator
// cost signal the rollout controller compares between releases.
func opSelfMicros(tr *obs.Trace) float64 {
	if tr == nil {
		return 0
	}
	var total int64
	for _, sp := range tr.Spans() {
		if strings.HasPrefix(sp.Name, obs.SpanOpPrefix) {
			total += sp.DurMicros
		}
	}
	return float64(total)
}
