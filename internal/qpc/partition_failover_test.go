package qpc

// Replica-failover chaos suite: a QPC over two DAP sites that each hold
// a full replica of both shards of a range-partitioned Rasters table.
// Killing the replica serving a shard mid-stream must move the stream to
// the sibling with byte-exact results and volume accounting; killing
// every replica must fail the query with a typed partition-unavailable
// error, promptly.

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"mocha/internal/catalog"
	"mocha/internal/core"
	"mocha/internal/dap"
	"mocha/internal/netsim"
	"mocha/internal/obs"
	"mocha/internal/ops"
	"mocha/internal/sequoia"
	"mocha/internal/storage"
	"mocha/internal/types"
)

// partitionHarness is a QPC with two DAP sites (site1 @ "dap1", site2 @
// "dap2"). Rasters is split on time into two shards, each replicated on
// both sites; the placement lists site1 first for shard 0 and site2
// first for shard 1, so a fresh server's replica selection serves shard
// 0 from site1 and shard 1 from site2.
type partitionHarness struct {
	srv     *Server
	network *netsim.Network
	rows    int // generated Rasters row count
}

const partScanQuery = `SELECT time, band, image FROM Rasters`

func newPartitionHarness(t *testing.T, tune func(*Config)) *partitionHarness {
	t.Helper()
	network := netsim.NewNetwork(nil)
	cfg := sequoia.TestScale()

	scratch, err := storage.OpenStore("", 32)
	if err != nil {
		t.Fatal(err)
	}
	if err := sequoia.GenerateRasters(scratch, cfg); err != nil {
		t.Fatal(err)
	}
	src, _ := scratch.Table("Rasters")

	pl := &catalog.Placement{
		Key: "time", Kind: catalog.PlaceRange,
		Parts: []catalog.Partition{
			{Table: "Rasters__p0", Replicas: []string{"site1", "site2"}, HasHi: true, Hi: 1},
			{Table: "Rasters__p1", Replicas: []string{"site2", "site1"}, HasLo: true, Lo: 1},
		},
	}

	// Route every generated row into its shard, then materialize both
	// shard tables in both replica stores.
	schema := src.Schema()
	ki := schema.ColumnIndex(pl.Key)
	buckets := make([][]types.Tuple, len(pl.Parts))
	it, err := src.Scan()
	if err != nil {
		t.Fatal(err)
	}
	rows := 0
	stats := catalog.TableStats{}
	sums := make([]int64, schema.Arity())
	for {
		tup, _, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if tup == nil {
			break
		}
		pi, err := pl.Route(tup[ki])
		if err != nil {
			t.Fatal(err)
		}
		buckets[pi] = append(buckets[pi], tup)
		rows++
		stats.RowCount++
		for i, v := range tup {
			sums[i] += int64(v.WireSize())
		}
	}
	for i, c := range schema.Columns {
		stats.Columns = append(stats.Columns, catalog.ColumnStats{
			Name: c.Name, AvgBytes: int(sums[i] / stats.RowCount),
		})
	}
	stores := make([]*storage.Store, 2)
	for si := range stores {
		st, err := storage.OpenStore("", 32)
		if err != nil {
			t.Fatal(err)
		}
		for pi, part := range pl.Parts {
			tbl, err := st.Create(part.Table, schema)
			if err != nil {
				t.Fatal(err)
			}
			for _, tup := range buckets[pi] {
				if _, err := tbl.Insert(tup); err != nil {
					t.Fatal(err)
				}
			}
		}
		stores[si] = st
	}

	for si, addr := range []string{"dap1", "dap2"} {
		l, err := network.Listen(addr)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { l.Close() })
		go dap.New(dap.Config{
			Site:         fmt.Sprintf("site%d", si+1),
			Driver:       &dap.StorageDriver{Store: stores[si]},
			IdleTimeout:  2 * time.Second,
			FrameTimeout: time.Second,
			// Flush roughly per raster image, so a byte-threshold fault
			// strikes after some tuples have already been delivered.
			BatchBytes: 8 << 10,
		}).Serve(l)
	}

	reg := ops.Builtins()
	cat := catalog.New(reg, catalog.NewRepositoryFromRegistry(reg))
	cat.AddSite(&catalog.Site{Name: "site1", Addr: "dap1"})
	cat.AddSite(&catalog.Site{Name: "site2", Addr: "dap2"})
	if err := cat.AddTable(&catalog.TableDef{
		Name: "Rasters", URI: "mocha://partitioned/Rasters", Site: "site1",
		Schema: schema, Stats: stats, Placement: pl,
	}); err != nil {
		t.Fatal(err)
	}

	qcfg := Config{
		Cat:          cat,
		Dial:         network.Dial,
		Strategy:     core.StrategyAuto,
		Metrics:      obs.NewRegistry(),
		QueryTimeout: 5 * time.Second,
		FrameTimeout: 400 * time.Millisecond,
		Retry: RetryPolicy{
			MaxAttempts: 4,
			BaseDelay:   5 * time.Millisecond,
			MaxDelay:    50 * time.Millisecond,
			Multiplier:  2,
			Jitter:      0.5,
			Budget:      8,
		},
	}
	if tune != nil {
		tune(&qcfg)
	}
	h := &partitionHarness{srv: New(qcfg), network: network, rows: rows}
	t.Cleanup(h.srv.Close)
	return h
}

func (h *partitionHarness) executeWithin(t *testing.T, wall time.Duration, sql string) (*Result, error) {
	t.Helper()
	type outcome struct {
		res *Result
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := h.srv.Execute(sql)
		done <- outcome{res, err}
	}()
	select {
	case o := <-done:
		return o.res, o.err
	case <-time.After(wall):
		t.Fatalf("query %q hung for more than %v", sql, wall)
		return nil, nil
	}
}

func (h *partitionHarness) counter(name string) int64 {
	return h.srv.Metrics().Counter(name).Value()
}

// TestPartitionFailoverMidStream kills the replica serving shard 0 after
// a quarter of the query's volume has flowed: the stream must fail over
// to the sibling replica and the query must finish with exactly the rows,
// CVDT and CVDA of the undisturbed run — the replayed prefix is recovery
// waste, never query volume — while the trace's summed span NetBytes
// still reproduce CVDT.
func TestPartitionFailoverMidStream(t *testing.T) {
	h := newPartitionHarness(t, func(c *Config) {
		// One strike opens the breaker, so the first mid-stream failure
		// fails over immediately instead of resuming against the corpse.
		c.Breaker = BreakerPolicy{FailureThreshold: 1}
	})
	clean, err := h.executeWithin(t, 10*time.Second, partScanQuery)
	if err != nil {
		t.Fatalf("clean scattered run failed: %v", err)
	}
	if len(clean.Rows) != h.rows {
		t.Fatalf("clean run returned %d rows, generated %d", len(clean.Rows), h.rows)
	}

	h.network.SetFault("dap1", &netsim.FaultPlan{
		DropFirstConnAfterBytes: clean.Stats.CVDT / 4,
	})
	res, err := h.executeWithin(t, 10*time.Second, partScanQuery)
	if err != nil {
		t.Fatalf("query did not survive replica death: %v", err)
	}
	if fmt.Sprint(res.Rows) != fmt.Sprint(clean.Rows) {
		t.Errorf("failover changed the result: %d rows vs %d clean", len(res.Rows), len(clean.Rows))
	}
	if res.Stats.CVDT != clean.Stats.CVDT {
		t.Errorf("CVDT = %d after failover, want %d: replayed prefix leaked into query volume",
			res.Stats.CVDT, clean.Stats.CVDT)
	}
	if res.Stats.CVDA != clean.Stats.CVDA {
		t.Errorf("CVDA = %d after failover, want %d", res.Stats.CVDA, clean.Stats.CVDA)
	}
	if got, want := res.Trace.NetBytes(), res.Stats.CVDT; got != want {
		t.Errorf("trace span NetBytes sum = %d, want CVDT %d", got, want)
	}
	if n := h.counter("qpc_replica_failovers"); n != 1 {
		t.Errorf("qpc_replica_failovers = %d, want exactly 1", n)
	}
	if wasted := h.counter("qpc_restart_wasted_bytes"); wasted <= 0 {
		t.Errorf("qpc_restart_wasted_bytes = %d; the replayed prefix must be accounted as waste", wasted)
	}
}

// TestPartitionFailoverAtSetup refuses every dial to shard 0's preferred
// replica before the query starts: session setup itself must walk to the
// sibling and the query must still produce the full result.
func TestPartitionFailoverAtSetup(t *testing.T) {
	h := newPartitionHarness(t, nil)
	clean, err := h.executeWithin(t, 10*time.Second, partScanQuery)
	if err != nil {
		t.Fatalf("clean scattered run failed: %v", err)
	}
	h.network.SetFault("dap1", &netsim.FaultPlan{RefuseDials: 1 << 30})
	res, err := h.executeWithin(t, 10*time.Second, partScanQuery)
	if err != nil {
		t.Fatalf("query did not survive a dead preferred replica: %v", err)
	}
	if fmt.Sprint(res.Rows) != fmt.Sprint(clean.Rows) {
		t.Errorf("setup failover changed the result: %d rows vs %d clean", len(res.Rows), len(clean.Rows))
	}
	if n := h.counter("qpc_replica_failovers"); n < 1 {
		t.Errorf("qpc_replica_failovers = %d, want at least 1", n)
	}
}

// TestHeartbeatDemotesDeadReplica runs the background prober against a
// site refusing every dial: its breaker must trip from heartbeats alone,
// so the next query's replica selection avoids the corpse outright — the
// query succeeds with zero mid-flight failovers.
func TestHeartbeatDemotesDeadReplica(t *testing.T) {
	h := newPartitionHarness(t, func(c *Config) {
		c.HeartbeatInterval = 10 * time.Millisecond
		c.Breaker = BreakerPolicy{FailureThreshold: 2}
	})
	h.network.SetFault("dap1", &netsim.FaultPlan{RefuseDials: 1 << 30})
	deadline := time.Now().Add(5 * time.Second)
	for !h.srv.Health().FailFast("site1") {
		if time.Now().After(deadline) {
			t.Fatalf("heartbeats never tripped site1's breaker (probes=%d failures=%d)",
				h.counter("qpc_heartbeat_probes"), h.counter("qpc_heartbeat_failures"))
		}
		time.Sleep(5 * time.Millisecond)
	}
	res, err := h.executeWithin(t, 10*time.Second, partScanQuery)
	if err != nil {
		t.Fatalf("query should sail past a heartbeat-demoted replica: %v", err)
	}
	if len(res.Rows) != h.rows {
		t.Fatalf("returned %d rows, want %d", len(res.Rows), h.rows)
	}
	if n := h.counter("qpc_replica_failovers"); n != 0 {
		t.Errorf("qpc_replica_failovers = %d; selection should have avoided the dead site with no failover", n)
	}
	if p, f := h.counter("qpc_heartbeat_probes"), h.counter("qpc_heartbeat_failures"); p < 2 || f < 2 {
		t.Errorf("heartbeat counters probes=%d failures=%d, want both >= 2", p, f)
	}
}

// TestPartitionBothReplicasDead drops every connection on both sites
// after a few KiB: each shard exhausts its whole replica set and the
// query must fail promptly with a typed PartitionUnavailableError naming
// the table, not hang or return a bare transport error.
func TestPartitionBothReplicasDead(t *testing.T) {
	h := newPartitionHarness(t, func(c *Config) {
		c.Breaker = BreakerPolicy{FailureThreshold: 1}
		c.Retry = RetryPolicy{
			MaxAttempts: 2,
			BaseDelay:   2 * time.Millisecond,
			MaxDelay:    10 * time.Millisecond,
			Multiplier:  2,
			Budget:      4,
		}
	})
	plan := func() *netsim.FaultPlan {
		return &netsim.FaultPlan{DropEachConnAfterBytes: 8 << 10}
	}
	h.network.SetFault("dap1", plan())
	h.network.SetFault("dap2", plan())
	start := time.Now()
	_, err := h.executeWithin(t, 10*time.Second, partScanQuery)
	if err == nil {
		t.Fatal("query should fail when every replica of a shard is dead")
	}
	var pu *PartitionUnavailableError
	if !errors.As(err, &pu) {
		t.Fatalf("error should be a PartitionUnavailableError, got %T: %v", err, err)
	}
	if pu.Table != "Rasters" {
		t.Errorf("error names table %q, want Rasters", pu.Table)
	}
	if len(pu.Sites) != 2 {
		t.Errorf("error lists replica sites %v, want both", pu.Sites)
	}
	if pu.Unwrap() == nil {
		t.Error("error should unwrap to the last transport failure")
	}
	if wall := time.Since(start); wall >= 10*time.Second {
		t.Errorf("failure took %v; replica exhaustion must be prompt", wall)
	}
}

// TestPartitionPruningExecutes pins end-to-end pruning: a predicate on
// the partition key keeps only the matching shard in the plan and the
// query reads nothing from the pruned shard's replica.
func TestPartitionPruningExecutes(t *testing.T) {
	h := newPartitionHarness(t, nil)
	res, err := h.executeWithin(t, 10*time.Second,
		`SELECT time, band FROM Rasters WHERE time < 1`)
	if err != nil {
		t.Fatal(err)
	}
	var scan *core.Fragment
	for _, f := range res.Plan.Fragments {
		if f.Table == "Rasters" {
			scan = f
		}
	}
	if scan == nil {
		t.Fatal("no Rasters fragment in the plan")
	}
	if scan.PartsTotal != 2 || len(scan.Parts) != 1 || scan.Parts[0].ID != 0 {
		t.Fatalf("pruning kept %d/%d partitions (%+v), want exactly shard 0",
			len(scan.Parts), scan.PartsTotal, scan.Parts)
	}
	for _, tup := range res.Rows {
		if int64(tup[0].(types.Int)) >= 1 {
			t.Fatalf("row %v escaped the pruned predicate", tup)
		}
	}
	if len(res.Rows) == 0 {
		t.Fatal("pruned query returned no rows")
	}
}
