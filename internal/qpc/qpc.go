// Package qpc implements the Query Processing Coordinator (section 3.2):
// the middle-tier component that parses and optimizes queries, deploys
// plan fragments and operator code to the DAPs, coordinates distributed
// execution (including 2-way semi-joins), evaluates the QPC-side
// operators, and streams results to clients.
package qpc

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"net"
	"strings"
	"sync"
	"time"

	"mocha/internal/catalog"
	"mocha/internal/core"
	"mocha/internal/exec"
	"mocha/internal/obs"
	"mocha/internal/sqlparser"
	"mocha/internal/types"
	"mocha/internal/vm"
)

// Config configures a QPC.
type Config struct {
	// Cat is the metadata catalog (tables, sites, operators, code repo).
	Cat *catalog.Catalog
	// Dial connects to a DAP address (netsim or TCP).
	Dial func(addr string) (net.Conn, error)
	// DialContext, when set, is used instead of Dial and observes the
	// query context while the connection is established.
	DialContext func(ctx context.Context, addr string) (net.Conn, error)
	// Strategy is the operator-placement policy.
	Strategy core.Strategy
	// Search selects the optimizer's cut-search mode: ranked whole-plan
	// DAG cuts (the default) or the legacy greedy per-operator policy.
	Search core.CutSearch
	// Model is the optimizer's cost model; zero value takes defaults.
	Model core.CostModel
	// QueryTimeout bounds each query execution end to end; once it
	// expires every session aborts and the query fails with a
	// descriptive error. Zero leaves queries unbounded.
	QueryTimeout time.Duration
	// FrameTimeout bounds each frame read/write on QPC↔DAP connections,
	// so a stalled or dead site fails the query instead of hanging it.
	// It must exceed the longest legitimate gap between a DAP's result
	// batches. Zero leaves frame I/O unbounded.
	FrameTimeout time.Duration
	// Retry configures retry-with-backoff for the idempotent phases
	// (dial, HELLO, CODE_CHECK/DEPLOY_CODE). The zero value takes
	// DefaultRetryPolicy; MaxAttempts=1 disables retries.
	Retry RetryPolicy
	// Breaker configures the per-site circuit breaker driven by
	// transport outcomes. An open breaker re-plans the site's fragments
	// under data shipping and stops retries against it until the
	// half-open probe succeeds. The zero value takes defaults; set
	// Breaker.Disabled to turn health tracking off.
	Breaker BreakerPolicy
	// HeartbeatInterval, when positive, starts a background prober that
	// dials and handshakes every catalog site at this interval, feeding
	// the health registry between queries: a dead site's breaker trips
	// from heartbeats alone, so replica selection demotes it before any
	// query pays to discover the corpse. Stop the prober with Close.
	// Zero disables heartbeating.
	HeartbeatInterval time.Duration
	// DisableResume turns off the resumable stream protocol: fragments
	// are activated without stream IDs, so any mid-stream connection
	// failure aborts the query (the ablation baseline, and the PR 1
	// behaviour).
	DisableResume bool
	// Exec tunes the QPC-side operator-tree executor: batch size, the
	// per-stream prefetch bound, the serial (non-overlapped) mode used
	// for A/B measurement, and the query-memory budget shared by every
	// concurrent query (Exec.MemBudgetBytes > 0 creates the server's
	// memory governor and arms the spilling operators). The zero value
	// takes defaults.
	Exec exec.Tuning
	// MaxConcurrent caps the queries executing simultaneously. Zero
	// disables admission control entirely (no cap, no queue).
	MaxConcurrent int
	// QueueDepth bounds how many queries may wait for a slot beyond
	// MaxConcurrent. Zero means no queue: when every slot is busy, new
	// queries are rejected immediately with AdmissionRejectedError.
	// Queued queries are admitted round-robin across tenants.
	QueueDepth int
	// Rollout tunes the canary-release controller (divergence thresholds
	// and auto-promotion). The zero value takes defaults.
	Rollout RolloutPolicy
	// Metrics receives the server's qpc_* counters and wire traffic
	// counters. Nil uses the process-wide obs.Default() registry.
	Metrics *obs.Registry
	// Logf, when set, receives diagnostic output.
	Logf func(format string, args ...any)
}

// Server is a QPC instance.
type Server struct {
	cfg      Config
	opt      *core.Optimizer
	health   *HealthRegistry
	met      qpcMetrics
	gov      *exec.Governor
	adm      *admission
	rollouts *rolloutController

	hb        *heartbeat
	closeOnce sync.Once
}

// qpcMetrics caches the server's registry handles. The retry counters
// make the PR 1 robustness layer observable: how often setup phases were
// retried, how often a query ran out of retry budget, and how much
// shipped code a failed attempt wasted.
type qpcMetrics struct {
	queriesTotal     *obs.Counter
	queriesFailed    *obs.Counter
	retries          *obs.Counter
	retryExhausted   *obs.Counter
	sessionsSalvaged *obs.Counter
	wastedCodeBytes  *obs.Counter
	queryMS          *obs.Histogram

	// Incremental-recovery counters: resumes that continued a stream in
	// place, the bytes each resume avoided re-receiving (everything
	// delivered before the cut), resumes the DAP could not honour, the
	// duplicate bytes discarded by full restarts, and queries re-planned
	// under data shipping because a site's breaker was open.
	resumes            *obs.Counter
	resumeSavedBytes   *obs.Counter
	resumeFailed       *obs.Counter
	restartWastedBytes *obs.Counter
	degradedReplans    *obs.Counter

	// Placement counters: shard streams moved to a sibling replica
	// (at setup or mid-stream), and the background heartbeat prober's
	// probe and failure totals.
	replicaFailovers  *obs.Counter
	heartbeatProbes   *obs.Counter
	heartbeatFailures *obs.Counter

	// Canary-rollout counters: queries routed to a canary release, active
	// shadow runs performed for comparison, divergences detected (result
	// digest, canary failure, or latency regression), rollouts aborted
	// and rollouts promoted.
	rolloutCanaryQueries *obs.Counter
	rolloutShadowRuns    *obs.Counter
	rolloutDivergences   *obs.Counter
	rolloutAborts        *obs.Counter
	rolloutPromotions    *obs.Counter
}

// New creates a QPC.
func New(cfg Config) *Server {
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	cfg.Retry = cfg.Retry.withDefaults()
	if cfg.Metrics == nil {
		cfg.Metrics = obs.Default()
	}
	opt := core.NewOptimizer(cfg.Cat)
	opt.Strategy = cfg.Strategy
	opt.Search = cfg.Search
	if cfg.Model != (core.CostModel{}) {
		opt.Model = cfg.Model
	}
	r := cfg.Metrics
	health := newHealthRegistry(cfg.Breaker, r)
	opt.Health = health
	var gov *exec.Governor
	if cfg.Exec.MemBudgetBytes > 0 {
		gov = exec.NewGovernor(cfg.Exec.MemBudgetBytes, r)
	}
	var adm *admission
	if cfg.MaxConcurrent > 0 {
		adm = newAdmission(cfg.MaxConcurrent, cfg.QueueDepth, r)
	}
	srv := &Server{cfg: cfg, opt: opt, health: health, gov: gov, adm: adm, met: qpcMetrics{
		queriesTotal:     r.Counter(obs.MQpcQueriesTotal),
		queriesFailed:    r.Counter(obs.MQpcQueriesFailed),
		retries:          r.Counter(obs.MQpcRetries),
		retryExhausted:   r.Counter(obs.MQpcRetryBudgetExhausted),
		sessionsSalvaged: r.Counter(obs.MQpcSessionsSalvaged),
		wastedCodeBytes:  r.Counter(obs.MQpcRetryWastedCodeBytes),
		queryMS:          r.Histogram(obs.MQpcQueryMS),

		resumes:            r.Counter(obs.MQpcStreamResumes),
		resumeSavedBytes:   r.Counter(obs.MQpcResumeSavedBytes),
		resumeFailed:       r.Counter(obs.MQpcResumeFailed),
		restartWastedBytes: r.Counter(obs.MQpcRestartWastedBytes),
		degradedReplans:    r.Counter(obs.MQpcDegradedReplans),

		replicaFailovers:  r.Counter(obs.MQpcReplicaFailovers),
		heartbeatProbes:   r.Counter(obs.MQpcHeartbeatProbes),
		heartbeatFailures: r.Counter(obs.MQpcHeartbeatFailures),

		rolloutCanaryQueries: r.Counter(obs.MQpcRolloutCanaryQueries),
		rolloutShadowRuns:    r.Counter(obs.MQpcRolloutShadowRuns),
		rolloutDivergences:   r.Counter(obs.MQpcRolloutDivergences),
		rolloutAborts:        r.Counter(obs.MQpcRolloutAborts),
		rolloutPromotions:    r.Counter(obs.MQpcRolloutPromotions),
	}}
	srv.rollouts = newRolloutController(srv, cfg.Rollout)
	if cfg.HeartbeatInterval > 0 {
		srv.hb = startHeartbeat(srv, cfg.HeartbeatInterval)
	}
	return srv
}

// Close stops the server's background heartbeat prober, when one is
// running. Safe to call more than once; queries in flight are not
// affected.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		if s.hb != nil {
			s.hb.stopAndWait()
		}
	})
}

// Health exposes the per-site breaker registry (operational overrides
// and SHOW HEALTH material).
func (s *Server) Health() *HealthRegistry { return s.health }

// Metrics returns the server's registry (SHOW METRICS payload).
func (s *Server) Metrics() *obs.Registry { return s.cfg.Metrics }

// Governor returns the server's shared query-memory governor, or nil
// when Exec.MemBudgetBytes left the executor ungoverned.
func (s *Server) Governor() *exec.Governor { return s.gov }

// QueryStats is the measured execution breakdown, mirroring section 5.2:
// DB, CPU, Net and Misc time components plus the volume measurements
// (CVDA, CVDT, CVRF) used throughout the evaluation.
type QueryStats struct {
	XMLName struct{} `xml:"query-stats"`

	// Time components (milliseconds).
	PlanMS   float64 `xml:"plan-ms"`   // parse + optimize (counted into Misc)
	DeployMS float64 `xml:"deploy-ms"` // code + plan deployment (counted into Misc)
	DBMS     float64 `xml:"db-ms"`     // DAP time reading from data servers
	CPUMS    float64 `xml:"cpu-ms"`    // operator evaluation (DAPs + QPC)
	NetMS    float64 `xml:"net-ms"`    // time blocked sending data over the network
	JoinMS   float64 `xml:"join-ms"`   // QPC hash join build+probe time
	MiscMS   float64 `xml:"misc-ms"`   // initialization and cleanup
	TotalMS  float64 `xml:"total-ms"`  // wall clock for the whole query

	// Volumes (bytes).
	CVDA        int64 `xml:"cvda"` // data volume accessed at the sources
	CVDT        int64 `xml:"cvdt"` // data volume transmitted over the network
	ResultBytes int64 `xml:"result-bytes"`

	ResultTuples int64 `xml:"result-tuples"`

	// Code shipping work.
	CodeClassesShipped int `xml:"code-classes-shipped"`
	CodeBytesShipped   int `xml:"code-bytes-shipped"`
	CacheHits          int `xml:"cache-hits"`

	// ResultDigest is the FNV-64a digest of the result rows' wire
	// encoding, in emission order. The rollout controller compares it
	// between the canary and active releases of an operator class; it is
	// also the client-visible fingerprint for result-equality checks.
	ResultDigest string `xml:"result-digest,omitempty"`
}

// CVRF returns the measured cumulative volume reduction factor.
func (qs QueryStats) CVRF() float64 {
	if qs.CVDA == 0 {
		return 0
	}
	return float64(qs.CVDT) / float64(qs.CVDA)
}

// Result is a fully materialized query result.
type Result struct {
	Schema types.Schema
	Rows   []types.Tuple
	Stats  QueryStats
	Plan   *core.Plan
	// Trace is the query's cross-site span timeline (EXPLAIN ANALYZE
	// raw material). Its summed span NetBytes equal Stats.CVDT.
	Trace *obs.Trace
}

// Query is a prepared (parsed, bound, optimized) query.
type Query struct {
	srv  *Server
	Plan *core.Plan
	// Schema is the result schema delivered to the client.
	Schema types.Schema
	planMS float64
}

// Prepare parses, binds and optimizes a SQL query.
func (s *Server) Prepare(sql string) (*Query, error) {
	start := time.Now()
	sel, err := sqlparser.Parse(sql)
	if err != nil {
		return nil, err
	}
	bound, err := core.Bind(sel, s.cfg.Cat)
	if err != nil {
		return nil, err
	}
	plan, err := s.opt.Plan(bound)
	if err != nil {
		return nil, err
	}
	return &Query{
		srv:    s,
		Plan:   plan,
		Schema: plan.ResultSchema,
		planMS: float64(time.Since(start).Microseconds()) / 1000,
	}, nil
}

// Execute prepares and runs a query, materializing all rows.
func (s *Server) Execute(sql string) (*Result, error) {
	return s.ExecuteContext(context.Background(), sql)
}

// ExecuteContext prepares and runs a query under ctx, materializing all
// rows. The context's deadline and cancellation propagate to every DAP
// session of the query.
func (s *Server) ExecuteContext(ctx context.Context, sql string) (*Result, error) {
	q, err := s.Prepare(sql)
	if err != nil {
		return nil, err
	}
	res := &Result{}
	stats, trace, err := q.RunTraced(ctx, func(t types.Tuple) error {
		res.Rows = append(res.Rows, t)
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Captured after the run: a degraded-site re-plan replaces q.Plan.
	res.Schema = q.Schema
	res.Plan = q.Plan
	res.Stats = *stats
	res.Trace = trace
	return res, nil
}

// Explain returns the optimizer's plan rendering.
func (s *Server) Explain(sql string) (string, error) {
	q, err := s.Prepare(sql)
	if err != nil {
		return "", err
	}
	return core.Explain(q.Plan), nil
}

// VerifyClass re-runs the static verification ladder on a repository
// class and renders a human-readable audit report: verdict, capability
// manifest and the verifier's static resource bounds. Classes cannot be
// published unverified, so a non-VERIFIED verdict means the stored blob
// was corrupted after publication.
func (s *Server) VerifyClass(name string) (string, error) {
	cls, ok := s.cfg.Cat.Repo().Get(name)
	if !ok {
		return "", fmt.Errorf("qpc: no class named %q in the code repository", name)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "class %s version %s checksum %s (%d bytes)\n",
		cls.Name, cls.Version, cls.Checksum, len(cls.Blob))
	prog, err := vm.Decode(cls.Blob)
	if err != nil {
		fmt.Fprintf(&b, "verdict: REJECTED (undecodable: %v)\n", err)
		return b.String(), nil
	}
	info, err := vm.Analyze(prog)
	if err != nil {
		fmt.Fprintf(&b, "verdict: REJECTED\nreason: %v\n", err)
		return b.String(), nil
	}
	b.WriteString("verdict: VERIFIED\n")
	caps := info.CapString()
	if caps == "" {
		caps = "(none)"
	}
	fmt.Fprintf(&b, "host capabilities: %s\n", caps)
	fmt.Fprintf(&b, "static bounds: stack=%d frames=%d\n", info.MaxStack, info.CallDepth)
	fmt.Fprintf(&b, "static cost: instrs=%s fixed=%d per-trip=%d scratch=%dB alloc=%s purity=%s\n",
		boundedStr(info.Cost.Bounded, info.Cost.BudgetInstrs),
		info.Cost.FixedUnits, info.Cost.PerTripUnits, info.Cost.ScratchBytes,
		boundedStr(info.Cost.AllocBounded, info.Cost.AllocBytes)+"B", info.Cost.Purity)
	for _, fi := range info.Funcs {
		fmt.Fprintf(&b, "func %s: args=%d stack=%d frames=%d ret=%s cost=%s\n",
			fi.Name, fi.NArgs, fi.MaxStack, fi.CallDepth, fi.Ret,
			boundedStr(fi.Bounded, fi.BudgetInstrs))
	}
	return b.String(), nil
}

// boundedStr renders a static budget: its value when the verifier
// bounded it, "unbounded" when the worst case is input-dependent.
func boundedStr(bounded bool, n int64) string {
	if !bounded {
		return "unbounded"
	}
	return fmt.Sprint(n)
}

// Run executes the prepared query, calling emit for each result row in
// order.
func (q *Query) Run(emit func(types.Tuple) error) (*QueryStats, error) {
	return q.RunContext(context.Background(), emit)
}

// RunContext executes the prepared query under ctx, calling emit for
// each result row in order. The configured QueryTimeout (when set) is
// layered onto the caller's context.
func (q *Query) RunContext(ctx context.Context, emit func(types.Tuple) error) (*QueryStats, error) {
	stats, _, err := q.RunTraced(ctx, emit)
	return stats, err
}

// RunTraced executes like RunContext and additionally returns the
// query's trace: the cross-site span timeline assembled from the QPC's
// own phases and every DAP session's reported spans.
//
// When a rollout is running for an operator class the plan ships, the
// query may be routed to the canary release. The routing decision is
// made exactly once, here, by hashing the query's freshly minted ID
// against the rollout fraction: everything downstream (deployment,
// stream restarts, replica failover) re-derives code from the plan's
// pinned digests, so a query never mixes releases mid-flight.
func (q *Query) RunTraced(ctx context.Context, emit func(types.Tuple) error) (*QueryStats, *obs.Trace, error) {
	start := time.Now()
	if d := q.srv.cfg.QueryTimeout; d > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}
	if adm := q.srv.adm; adm != nil {
		// One admission slot covers the whole call, including a
		// degraded-site re-plan's rerun: the retry is the same query, not
		// new load.
		if err := adm.acquire(ctx, TenantFrom(ctx)); err != nil {
			return nil, obs.NewTrace(""), err
		}
		defer adm.release()
	}
	q.srv.met.queriesTotal.Inc()
	qid := obs.NewTraceID()
	if dec := q.srv.rollouts.route(q.Plan, qid); dec != nil {
		return q.runCanary(ctx, start, qid, dec, emit)
	}
	stats, trace, err := q.runRelease(ctx, qid, emit, nil, true)
	if err != nil {
		q.srv.met.queriesFailed.Inc()
		return nil, trace, q.wrapDeadline(ctx, start, err)
	}
	q.finish(start, stats)
	q.srv.rollouts.observeActive(q.Plan, q.Plan.SQL, stats.ResultDigest, opSelfMicros(trace), nil)
	return stats, trace, nil
}

// runRelease executes the prepared plan once, hashing every emitted row
// into the result digest. overrides substitutes canary code refs into
// the shipped fragments; a nil map runs the plan exactly as prepared
// (the active release). allowReplan enables the degraded-site re-plan
// fallback — canary runs disable it, because a re-plan re-prepares the
// query and would lose the pinned release.
func (q *Query) runRelease(ctx context.Context, traceID string, emit func(types.Tuple) error,
	overrides map[string]core.CodeRef, allowReplan bool) (*QueryStats, *obs.Trace, error) {
	stats := &QueryStats{PlanMS: q.planMS}
	trace := obs.NewTrace(traceID)
	h := fnv.New64a()
	var hashBuf []byte
	var emitted int64
	counting := func(t types.Tuple) error {
		emitted++
		hashBuf = t.AppendTo(hashBuf[:0])
		h.Write(hashBuf)
		return emit(t)
	}
	pe := &planExec{srv: q.srv, plan: q.Plan, stats: stats, trace: trace, overrides: overrides}
	err := pe.run(ctx, counting)
	if err != nil && allowReplan && emitted == 0 && ctx.Err() == nil && q.srv.replanDegraded(q) {
		// A site's breaker opened during the failed run and no rows have
		// reached the client yet: re-plan once with the health oracle's
		// current view (degraded fragments fall back to data shipping)
		// and run the new plan from scratch.
		q.srv.met.degradedReplans.Inc()
		q.srv.cfg.Logf("qpc: re-planning under degraded-site placement after: %v", err)
		stats = &QueryStats{PlanMS: q.planMS}
		trace = obs.NewTrace("")
		pe = &planExec{srv: q.srv, plan: q.Plan, stats: stats, trace: trace}
		err = pe.run(ctx, counting)
	}
	if err != nil {
		return stats, trace, err
	}
	stats.ResultDigest = fmt.Sprintf("%016x", h.Sum64())
	return stats, trace, nil
}

// finish stamps the wall-clock totals on a delivered run's stats.
func (q *Query) finish(start time.Time, stats *QueryStats) {
	stats.TotalMS = float64(time.Since(start).Microseconds())/1000 + q.planMS
	stats.MiscMS += q.planMS + stats.DeployMS
	q.srv.met.queryMS.Observe(int64(stats.TotalMS))
}

// wrapDeadline annotates an execution error that was caused by the
// query deadline expiring.
func (q *Query) wrapDeadline(ctx context.Context, start time.Time, err error) error {
	if errors.Is(ctx.Err(), context.DeadlineExceeded) {
		return fmt.Errorf("qpc: query aborted after %s (deadline exceeded): %w",
			time.Since(start).Round(time.Millisecond), err)
	}
	return err
}

// runCanary executes a query that routing pinned to a canary release.
// The canary's rows are buffered, never streamed: the client only ever
// receives output that matches the active release's behaviour. A canary
// run whose result digest matches the recorded active oracle for the
// same SQL is delivered directly; otherwise an authoritative shadow run
// of the active release decides — on divergence the active rows are
// delivered (byte-identical to a no-rollout run) and the rollout
// auto-rolls back with the evidence.
func (q *Query) runCanary(ctx context.Context, start time.Time, qid string,
	dec *canaryDecision, emit func(types.Tuple) error) (*QueryStats, *obs.Trace, error) {
	srv := q.srv
	srv.met.rolloutCanaryQueries.Inc()
	var canRows []types.Tuple
	canStats, canTrace, canErr := q.runRelease(ctx, qid+"-c", func(t types.Tuple) error {
		canRows = append(canRows, t)
		return nil
	}, dec.overrides, false)
	canTrace.Add(obs.Span{Name: "rollout:canary", Site: dec.st.Class})
	can := runOutcome{err: canErr, micros: opSelfMicros(canTrace)}
	if canErr == nil {
		can.digest = canStats.ResultDigest
		switch srv.rollouts.checkOracle(dec, q.Plan.SQL, can) {
		case oracleMatch, oracleUnstable:
			if err := replayRows(canRows, emit); err != nil {
				srv.met.queriesFailed.Inc()
				return nil, canTrace, err
			}
			q.finish(start, canStats)
			return canStats, canTrace, nil
		}
	} else {
		srv.rollouts.checkOracleErr(dec)
	}
	// No usable oracle, a stale mismatch, or a canary failure: run the
	// active release as the authority and judge.
	srv.met.rolloutShadowRuns.Inc()
	var actRows []types.Tuple
	actStats, actTrace, actErr := q.runRelease(ctx, qid, func(t types.Tuple) error {
		actRows = append(actRows, t)
		return nil
	}, nil, true)
	act := runOutcome{err: actErr, micros: opSelfMicros(actTrace)}
	if actErr == nil {
		act.digest = actStats.ResultDigest
	}
	if srv.rollouts.judge(dec, q.Plan.SQL, can, act) {
		if err := replayRows(canRows, emit); err != nil {
			srv.met.queriesFailed.Inc()
			return nil, canTrace, err
		}
		q.finish(start, canStats)
		return canStats, canTrace, nil
	}
	if actErr != nil {
		srv.met.queriesFailed.Inc()
		return nil, actTrace, q.wrapDeadline(ctx, start, actErr)
	}
	if err := replayRows(actRows, emit); err != nil {
		srv.met.queriesFailed.Inc()
		return nil, actTrace, err
	}
	q.finish(start, actStats)
	return actStats, actTrace, nil
}

// replayRows delivers buffered rows to the client's emit callback.
func replayRows(rows []types.Tuple, emit func(types.Tuple) error) error {
	for _, t := range rows {
		if err := emit(t); err != nil {
			return err
		}
	}
	return nil
}

// replanDegraded re-prepares q when its current plan places work at a
// site whose breaker is now open but whose fragments were planned while
// the site was healthy. It installs the fresh degraded-aware plan on q
// and reports whether anything changed (callers then rerun the query).
func (s *Server) replanDegraded(q *Query) bool {
	stale := false
	for _, f := range q.Plan.Fragments {
		// Scattered fragments never re-plan for a sick replica: replica
		// failover is their recovery path, and a partition whose whole
		// replica set is down is unavailable, not data-shippable.
		if f.PartsTotal > 0 {
			continue
		}
		if !f.Degraded && s.health.Degraded(f.Site) {
			stale = true
			break
		}
	}
	if !stale || q.Plan.SQL == "" {
		return false
	}
	q2, err := s.Prepare(q.Plan.SQL)
	if err != nil {
		return false
	}
	q.Plan = q2.Plan
	q.Schema = q2.Schema
	q.planMS += q2.planMS
	return true
}

// mergeCodeShipping folds a concurrent deployment's counters in.
func (qs *QueryStats) mergeCodeShipping(o *QueryStats) {
	qs.CodeClassesShipped += o.CodeClassesShipped
	qs.CodeBytesShipped += o.CodeBytesShipped
	qs.CacheHits += o.CacheHits
}

// mergeTimesAndVolumes folds a concurrent phase's full measurements in.
func (qs *QueryStats) mergeTimesAndVolumes(o *QueryStats) {
	qs.DBMS += o.DBMS
	qs.CPUMS += o.CPUMS
	qs.NetMS += o.NetMS
	qs.MiscMS += o.MiscMS
	qs.CVDA += o.CVDA
	qs.CVDT += o.CVDT
	qs.mergeCodeShipping(o)
}
