package qpc

import (
	"context"
	"errors"
	"testing"
	"time"

	"mocha/internal/obs"
)

// queuedCount reads the queue occupancy under the admission lock.
func queuedCount(a *admission) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.queued
}

func waitQueued(t *testing.T, a *admission, want int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if queuedCount(a) == want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("queue never reached %d waiters (at %d)", want, queuedCount(a))
}

// TestAdmissionRejectsWhenSaturated: with no queue, the second query is
// turned away with the typed error while the first holds the only slot.
func TestAdmissionRejectsWhenSaturated(t *testing.T) {
	a := newAdmission(1, 0, obs.NewRegistry())
	if err := a.acquire(context.Background(), "tenant-a"); err != nil {
		t.Fatal(err)
	}
	err := a.acquire(context.Background(), "tenant-b")
	var rej *AdmissionRejectedError
	if !errors.As(err, &rej) {
		t.Fatalf("err = %v, want AdmissionRejectedError", err)
	}
	if rej.Tenant != "tenant-b" || rej.Depth != 0 {
		t.Errorf("rejection = %+v", rej)
	}
	a.release()
	if err := a.acquire(context.Background(), "tenant-b"); err != nil {
		t.Fatalf("after release: %v", err)
	}
	a.release()
}

// TestAdmissionRoundRobinFairness queues two waiters from tenant a and
// one from tenant b behind a single slot; releases must alternate
// tenants (a, b, a), not drain one tenant's queue first.
func TestAdmissionRoundRobinFairness(t *testing.T) {
	a := newAdmission(1, 8, obs.NewRegistry())
	if err := a.acquire(context.Background(), ""); err != nil {
		t.Fatal(err)
	}
	grants := make(chan string, 3)
	enqueue := func(tenant string, n int) {
		go func() {
			if err := a.acquire(context.Background(), tenant); err != nil {
				t.Errorf("%s: %v", tenant, err)
				return
			}
			grants <- tenant
		}()
		waitQueued(t, a, n)
	}
	// Deterministic arrival order: a1, a2, b1.
	enqueue("tenant-a", 1)
	enqueue("tenant-a", 2)
	enqueue("tenant-b", 3)

	var got []string
	for i := 0; i < 3; i++ {
		a.release()
		select {
		case tn := <-grants:
			got = append(got, tn)
		case <-time.After(2 * time.Second):
			t.Fatalf("waiter %d never admitted (got %v)", i, got)
		}
	}
	a.release() // the last admitted query finishes
	want := []string{"tenant-a", "tenant-b", "tenant-a"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("admit order = %v, want %v", got, want)
		}
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.running != 0 || a.queued != 0 {
		t.Errorf("running=%d queued=%d after drain", a.running, a.queued)
	}
}

// TestAdmissionCancelWhileQueued: a cancelled waiter leaves the queue
// without consuming a slot, and the next release still hands the slot
// to a live waiter.
func TestAdmissionCancelWhileQueued(t *testing.T) {
	a := newAdmission(1, 8, obs.NewRegistry())
	if err := a.acquire(context.Background(), ""); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { errc <- a.acquire(ctx, "tenant-a") }()
	waitQueued(t, a, 1)
	live := make(chan error, 1)
	go func() { live <- a.acquire(context.Background(), "tenant-b") }()
	waitQueued(t, a, 2)

	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter got %v", err)
	}
	waitQueued(t, a, 1)

	a.release() // slot transfers to tenant-b, not the departed waiter
	select {
	case err := <-live:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("live waiter never admitted after cancel + release")
	}
	a.release()
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.running != 0 || a.queued != 0 {
		t.Errorf("running=%d queued=%d after drain", a.running, a.queued)
	}
}
