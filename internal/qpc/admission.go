package qpc

import (
	"context"
	"fmt"
	"sync"
	"time"

	"mocha/internal/obs"
)

// AdmissionRejectedError reports that a query was turned away at the
// QPC's admission queue: every execution slot was busy and the bounded
// wait queue was full. Clients can back off and retry; the queue bound
// is what keeps an overloaded QPC's latency and memory flat instead of
// letting work pile up without limit.
type AdmissionRejectedError struct {
	// Tenant is the fairness class of the rejected query.
	Tenant string
	// Queued and Depth are the queue's occupancy and bound at rejection.
	Queued, Depth int
}

func (e *AdmissionRejectedError) Error() string {
	return fmt.Sprintf("qpc: admission queue full (%d/%d queued, tenant %q): try again later",
		e.Queued, e.Depth, e.Tenant)
}

// tenantKey is the context key carrying the session's tenant.
type tenantKey struct{}

// WithTenant tags ctx with the client's admission fairness class.
func WithTenant(ctx context.Context, tenant string) context.Context {
	if tenant == "" {
		return ctx
	}
	return context.WithValue(ctx, tenantKey{}, tenant)
}

// TenantFrom returns the tenant ctx carries ("" for the default class).
func TenantFrom(ctx context.Context) string {
	t, _ := ctx.Value(tenantKey{}).(string)
	return t
}

// admWaiter is one queued query. granted records the slot handoff so a
// cancellation racing an admit releases the slot instead of leaking it.
type admWaiter struct {
	ch      chan struct{}
	granted bool
}

// admission is the QPC's bounded, per-tenant-fair admission queue.
// MaxConcurrent slots execute; past that, queries wait in per-tenant
// FIFO queues served round-robin across tenants, so a flood from one
// tenant cannot starve another. Past QueueDepth waiters, queries are
// rejected immediately with AdmissionRejectedError.
type admission struct {
	mu            sync.Mutex
	maxConcurrent int
	queueDepth    int
	running       int
	queued        int
	tenants       map[string][]*admWaiter
	order         []string // round-robin tenant scan order
	cursor        int

	runningGauge *obs.Gauge
	queuedGauge  *obs.Gauge
	admitted     *obs.Counter
	rejected     *obs.Counter
	waitMS       *obs.Histogram
}

// newAdmission creates the queue; this is the single registration site
// for the qpc_admission_* metrics.
func newAdmission(maxConcurrent, queueDepth int, r *obs.Registry) *admission {
	if r == nil {
		r = obs.Default()
	}
	return &admission{
		maxConcurrent: maxConcurrent,
		queueDepth:    queueDepth,
		tenants:       make(map[string][]*admWaiter),
		runningGauge:  r.Gauge(obs.MQpcAdmissionRunning),
		queuedGauge:   r.Gauge(obs.MQpcAdmissionQueued),
		admitted:      r.Counter(obs.MQpcAdmissionAdmitted),
		rejected:      r.Counter(obs.MQpcAdmissionRejected),
		waitMS:        r.Histogram(obs.MQpcAdmissionWaitMS),
	}
}

// acquire takes an execution slot for tenant, waiting in the bounded
// queue if every slot is busy. It returns AdmissionRejectedError when
// the queue is full and ctx's error when the wait is cancelled.
func (a *admission) acquire(ctx context.Context, tenant string) error {
	start := time.Now()
	a.mu.Lock()
	if a.running < a.maxConcurrent {
		a.running++
		a.runningGauge.Set(int64(a.running))
		a.admitted.Inc()
		a.waitMS.Observe(0)
		a.mu.Unlock()
		return nil
	}
	if a.queued >= a.queueDepth {
		a.rejected.Inc()
		err := &AdmissionRejectedError{Tenant: tenant, Queued: a.queued, Depth: a.queueDepth}
		a.mu.Unlock()
		return err
	}
	w := &admWaiter{ch: make(chan struct{})}
	if _, ok := a.tenants[tenant]; !ok {
		a.ensureOrder(tenant)
	}
	a.tenants[tenant] = append(a.tenants[tenant], w)
	a.queued++
	a.queuedGauge.Set(int64(a.queued))
	a.mu.Unlock()

	select {
	case <-w.ch:
		a.waitMS.Observe(time.Since(start).Milliseconds())
		return nil
	case <-ctx.Done():
		a.mu.Lock()
		if w.granted {
			// The admit raced the cancellation: the slot was already
			// handed to us, give it back.
			a.releaseLocked()
			a.mu.Unlock()
			return ctx.Err()
		}
		q := a.tenants[tenant]
		for i, o := range q {
			if o == w {
				a.tenants[tenant] = append(q[:i:i], q[i+1:]...)
				break
			}
		}
		a.queued--
		a.queuedGauge.Set(int64(a.queued))
		a.mu.Unlock()
		return ctx.Err()
	}
}

// ensureOrder adds tenant to the round-robin scan order once.
func (a *admission) ensureOrder(tenant string) {
	for _, t := range a.order {
		if t == tenant {
			return
		}
	}
	a.order = append(a.order, tenant)
}

// release returns a slot; if queries are waiting, the slot transfers to
// the next tenant's oldest waiter (round-robin across tenants).
func (a *admission) release() {
	a.mu.Lock()
	a.releaseLocked()
	a.mu.Unlock()
}

func (a *admission) releaseLocked() {
	for i := 0; i < len(a.order); i++ {
		idx := (a.cursor + i) % len(a.order)
		tenant := a.order[idx]
		q := a.tenants[tenant]
		if len(q) == 0 {
			continue
		}
		w := q[0]
		a.tenants[tenant] = q[1:]
		a.cursor = (idx + 1) % len(a.order)
		a.queued--
		a.queuedGauge.Set(int64(a.queued))
		a.admitted.Inc()
		w.granted = true
		close(w.ch)
		return
	}
	a.running--
	a.runningGauge.Set(int64(a.running))
}
