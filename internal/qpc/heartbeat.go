package qpc

import (
	"context"
	"time"
)

// Background site heartbeating. Breakers normally learn about a dead
// DAP only when a query pays the price of discovering it. With
// replicated placement the QPC can afford to know earlier: a prober
// dials and handshakes every catalog site on a fixed interval, feeding
// the same health registry the query path reports to. Enough missed
// heartbeats trip the site's breaker, so PickReplica demotes the
// replica — new queries route around the corpse, and queries in flight
// fail over on their next frame.

// heartbeat is the prober's lifecycle handle.
type heartbeat struct {
	stop chan struct{}
	done chan struct{}
}

// startHeartbeat launches the prober goroutine.
func startHeartbeat(s *Server, interval time.Duration) *heartbeat {
	hb := &heartbeat{stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(hb.done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-hb.stop:
				return
			case <-t.C:
				s.probeSites(hb.stop)
			}
		}
	}()
	return hb
}

func (hb *heartbeat) stopAndWait() {
	close(hb.stop)
	<-hb.done
}

// probeSites dials and handshakes every catalog site once, reporting
// each outcome to the health registry. A probe is bounded by the frame
// timeout (or a 2s default) so a black-holed site cannot wedge the
// prober.
func (s *Server) probeSites(stop <-chan struct{}) {
	bound := s.cfg.FrameTimeout
	if bound <= 0 {
		bound = 2 * time.Second
	}
	for _, site := range s.cfg.Cat.Sites() {
		select {
		case <-stop:
			return
		default:
		}
		s.met.heartbeatProbes.Inc()
		ctx, cancel := context.WithTimeout(context.Background(), bound)
		start := time.Now()
		ds, err := s.openSession(ctx, site.Name, "")
		cancel()
		if err != nil {
			s.met.heartbeatFailures.Inc()
			s.health.ReportFailure(site.Name, err)
			s.cfg.Logf("qpc: heartbeat to %s failed: %v", site.Name, err)
			continue
		}
		s.health.ReportSuccess(site.Name, time.Since(start))
		ds.close()
	}
}
