package catalog

import (
	"encoding/xml"
	"fmt"

	"mocha/internal/ops"
)

// RDF resource descriptions. Each catalog resource (view, type or
// operator) carries an RDF/XML document describing its behaviour and
// proper utilization, as in section 3.5 of the paper.

// RDFDocument is a minimal RDF/XML wrapper.
type RDFDocument struct {
	XMLName     xml.Name       `xml:"RDF"`
	XMLNSRDF    string         `xml:"xmlns,attr"`
	XMLNSMocha  string         `xml:"xmlns-mocha,attr"`
	Description RDFDescription `xml:"Description"`
}

// RDFDescription describes one resource.
type RDFDescription struct {
	About      string        `xml:"about,attr"`
	Kind       string        `xml:"kind"` // "operator", "table", "type"
	Name       string        `xml:"name"`
	Version    string        `xml:"version,omitempty"`
	Signature  string        `xml:"signature,omitempty"`
	Aggregate  bool          `xml:"aggregate,omitempty"`
	ResultSize string        `xml:"result-size,omitempty"`
	Site       string        `xml:"site,omitempty"`
	RowCount   int64         `xml:"row-count,omitempty"`
	Properties []RDFProperty `xml:"property,omitempty"`
}

// RDFProperty is a free-form key/value annotation.
type RDFProperty struct {
	Key   string `xml:"key,attr"`
	Value string `xml:",chardata"`
}

func newRDF(about string) *RDFDocument {
	return &RDFDocument{
		XMLNSRDF:    "http://www.w3.org/1999/02/22-rdf-syntax-ns#",
		XMLNSMocha:  "mocha://schema/1.0#",
		Description: RDFDescription{About: about},
	}
}

// OperatorRDF builds the RDF description of an operator definition.
func OperatorRDF(d *ops.Def) ([]byte, error) {
	doc := newRDF(d.URI)
	doc.Description.Kind = "operator"
	doc.Description.Name = d.Name
	doc.Description.Version = d.Program().Version
	doc.Description.Aggregate = d.Aggregate
	sig := "("
	for i, a := range d.Args {
		if i > 0 {
			sig += ", "
		}
		sig += a.String()
	}
	sig += ") -> " + d.Ret.String()
	doc.Description.Signature = sig
	if d.ResultBytes > 0 {
		doc.Description.ResultSize = fmt.Sprintf("%d bytes", d.ResultBytes)
	} else {
		doc.Description.ResultSize = fmt.Sprintf("%.2fx input", d.ResultRatio)
	}
	return xml.MarshalIndent(doc, "", "  ")
}

// TableRDF builds the RDF description of a table definition.
func TableRDF(t *TableDef) ([]byte, error) {
	doc := newRDF(t.URI)
	doc.Description.Kind = "table"
	doc.Description.Name = t.Name
	doc.Description.Site = t.Site
	doc.Description.RowCount = t.Stats.RowCount
	for _, c := range t.Schema.Columns {
		doc.Description.Properties = append(doc.Description.Properties, RDFProperty{
			Key:   "column:" + c.Name,
			Value: c.Kind.String(),
		})
	}
	return xml.MarshalIndent(doc, "", "  ")
}

// ParseRDF decodes an RDF document.
func ParseRDF(data []byte) (*RDFDocument, error) {
	var doc RDFDocument
	if err := xml.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("catalog: parse RDF: %w", err)
	}
	return &doc, nil
}
