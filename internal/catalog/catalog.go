// Package catalog implements MOCHA's metadata catalog (section 3.5).
// Views, data types and query operators are "resources" identified by a
// URI, each described by an RDF-style XML document. The catalog drives
// both query optimization (table statistics, operator selectivities) and
// automatic code deployment (mapping operators to repository classes).
package catalog

import (
	"encoding/xml"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"

	"mocha/internal/ops"
	"mocha/internal/types"
)

// ColumnStats records the average wire size of one column's values; the
// VRF computation is built on these.
type ColumnStats struct {
	Name     string `xml:"name,attr"`
	AvgBytes int    `xml:"avg-bytes,attr"`
}

// TableStats summarizes a table for the optimizer.
type TableStats struct {
	RowCount int64         `xml:"row-count,attr"`
	Columns  []ColumnStats `xml:"column"`
}

// AvgTupleBytes is the mean wire size of a full tuple.
func (s TableStats) AvgTupleBytes() int {
	var n int
	for _, c := range s.Columns {
		n += c.AvgBytes
	}
	return n
}

// AvgColBytes returns the average size of the named column (0 if
// unknown).
func (s TableStats) AvgColBytes(name string) int {
	for _, c := range s.Columns {
		if strings.EqualFold(c.Name, name) {
			return c.AvgBytes
		}
	}
	return 0
}

// TableDef describes one distributed relation: where it lives, its
// middleware schema and its statistics.
type TableDef struct {
	Name   string
	URI    string
	Site   string // name of the data site whose DAP serves this table
	Schema types.Schema
	Stats  TableStats
	// Placement, when non-nil, shards the table across the fleet: rows
	// live in per-partition physical tables on replica sites, and Site
	// only names the primary replica of the first partition (a
	// compatibility anchor for code that wants "the" site).
	Placement *Placement
}

// Site describes a data site: the network address its DAP listens on.
type Site struct {
	Name string
	Addr string
}

// Catalog is the QPC's metadata store. It is safe for concurrent use.
type Catalog struct {
	mu     sync.RWMutex
	tables map[string]*TableDef
	sites  map[string]*Site
	sel    map[string]float64 // predicate selectivities, keyed op\x00table
	ops    *ops.Registry
	repo   *Repository
}

// New creates a catalog over an operator registry and code repository.
func New(reg *ops.Registry, repo *Repository) *Catalog {
	return &Catalog{
		tables: make(map[string]*TableDef),
		sites:  make(map[string]*Site),
		sel:    make(map[string]float64),
		ops:    reg,
		repo:   repo,
	}
}

// Ops returns the operator registry.
func (c *Catalog) Ops() *ops.Registry { return c.ops }

// Repo returns the code repository.
func (c *Catalog) Repo() *Repository { return c.repo }

// AddSite registers a data site.
func (c *Catalog) AddSite(s *Site) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sites[strings.ToLower(s.Name)] = s
}

// SiteByName resolves a site.
func (c *Catalog) SiteByName(name string) (*Site, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	s, ok := c.sites[strings.ToLower(name)]
	return s, ok
}

// Sites lists registered data sites, sorted by name (the heartbeat
// prober's worklist).
func (c *Catalog) Sites() []*Site {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*Site, 0, len(c.sites))
	for _, s := range c.sites {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// AddTable registers a table definition.
func (c *Catalog) AddTable(t *TableDef) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := strings.ToLower(t.Name)
	if _, dup := c.tables[key]; dup {
		return fmt.Errorf("catalog: table %s already registered", t.Name)
	}
	if _, ok := c.sites[strings.ToLower(t.Site)]; !ok {
		return fmt.Errorf("catalog: table %s references unknown site %q", t.Name, t.Site)
	}
	if t.Placement != nil {
		known := func(site string) bool {
			_, ok := c.sites[strings.ToLower(site)]
			return ok
		}
		if err := t.Placement.Validate(t.Schema, known); err != nil {
			return fmt.Errorf("catalog: table %s placement: %w", t.Name, err)
		}
	}
	c.tables[key] = t
	return nil
}

// Table resolves a table by name.
func (c *Catalog) Table(name string) (*TableDef, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.tables[strings.ToLower(name)]
	return t, ok
}

// TableNames lists registered tables, sorted.
func (c *Catalog) TableNames() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	names := make([]string, 0, len(c.tables))
	for _, t := range c.tables {
		names = append(names, t.Name)
	}
	sort.Strings(names)
	return names
}

// SetSelectivity records the estimated selectivity of a predicate
// operator applied to a table, as stored by the paper's catalog
// ("selectivity of various operators").
func (c *Catalog) SetSelectivity(operator, table string, sf float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sel[selKey(operator, table)] = sf
}

// DefaultSelectivity is assumed when the catalog has no estimate.
const DefaultSelectivity = 1.0 / 3

// Selectivity returns the estimated selectivity for (operator, table).
func (c *Catalog) Selectivity(operator, table string) float64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if sf, ok := c.sel[selKey(operator, table)]; ok {
		return sf
	}
	return DefaultSelectivity
}

func selKey(op, table string) string {
	return strings.ToLower(op) + "\x00" + strings.ToLower(table)
}

// catalogDoc is the XML persistence format.
type catalogDoc struct {
	XMLName xml.Name   `xml:"catalog"`
	Sites   []siteDoc  `xml:"site"`
	Tables  []tableDoc `xml:"table"`
	Sels    []selDoc   `xml:"selectivity"`
}

type siteDoc struct {
	Name string `xml:"name,attr"`
	Addr string `xml:"addr,attr"`
}

type tableDoc struct {
	Name      string     `xml:"name,attr"`
	URI       string     `xml:"uri,attr"`
	Site      string     `xml:"site,attr"`
	Columns   []colDoc   `xml:"column"`
	Stats     TableStats `xml:"stats"`
	Placement *Placement `xml:"placement"`
}

type colDoc struct {
	Name string `xml:"name,attr"`
	Kind string `xml:"kind,attr"`
}

type selDoc struct {
	Operator string  `xml:"operator,attr"`
	Table    string  `xml:"table,attr"`
	SF       float64 `xml:"sf,attr"`
}

// Save writes the catalog (sites, tables, selectivities) as XML.
func (c *Catalog) Save(path string) error {
	c.mu.RLock()
	doc := catalogDoc{}
	for _, s := range c.sites {
		doc.Sites = append(doc.Sites, siteDoc{Name: s.Name, Addr: s.Addr})
	}
	for _, t := range c.tables {
		td := tableDoc{Name: t.Name, URI: t.URI, Site: t.Site, Stats: t.Stats, Placement: t.Placement.Clone()}
		for _, col := range t.Schema.Columns {
			td.Columns = append(td.Columns, colDoc{Name: col.Name, Kind: col.Kind.String()})
		}
		doc.Tables = append(doc.Tables, td)
	}
	for k, sf := range c.sel {
		parts := strings.SplitN(k, "\x00", 2)
		doc.Sels = append(doc.Sels, selDoc{Operator: parts[0], Table: parts[1], SF: sf})
	}
	c.mu.RUnlock()
	sort.Slice(doc.Sites, func(i, j int) bool { return doc.Sites[i].Name < doc.Sites[j].Name })
	sort.Slice(doc.Tables, func(i, j int) bool { return doc.Tables[i].Name < doc.Tables[j].Name })
	sort.Slice(doc.Sels, func(i, j int) bool {
		return doc.Sels[i].Operator+doc.Sels[i].Table < doc.Sels[j].Operator+doc.Sels[j].Table
	})
	data, err := xml.MarshalIndent(&doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// Load merges a saved catalog file into c.
func (c *Catalog) Load(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var doc catalogDoc
	if err := xml.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("catalog: parse %s: %w", path, err)
	}
	for _, s := range doc.Sites {
		c.AddSite(&Site{Name: s.Name, Addr: s.Addr})
	}
	for _, td := range doc.Tables {
		var schema types.Schema
		for _, col := range td.Columns {
			k, ok := types.KindByName(col.Kind)
			if !ok {
				return fmt.Errorf("catalog: table %s column %s has unknown kind %q", td.Name, col.Name, col.Kind)
			}
			schema.Columns = append(schema.Columns, types.Column{Name: col.Name, Kind: k})
		}
		if err := c.AddTable(&TableDef{Name: td.Name, URI: td.URI, Site: td.Site, Schema: schema, Stats: td.Stats, Placement: td.Placement}); err != nil {
			return err
		}
	}
	for _, s := range doc.Sels {
		c.SetSelectivity(s.Operator, s.Table, s.SF)
	}
	return nil
}
