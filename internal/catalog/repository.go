package catalog

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"mocha/internal/ops"
	"mocha/internal/vm"
)

// Class is one deployable unit of middleware code: the MVM analogue of a
// compiled Java class file stored in the well-known code repository of
// section 3.6. A Class is a view of one Release: Version is the release
// tag and Checksum its content digest.
type Class struct {
	Name     string
	Version  string
	Checksum string
	ModTime  time.Time
	Blob     []byte   // serialized vm.Program
	Caps     []string // host capabilities from the verifier's manifest
	// Cost is the verifier's static cost-and-resource summary, stamped
	// at publish and carried into plan code references so the optimizer
	// and governor can price the class without re-analyzing it.
	Cost vm.CostInfo
}

// classHistory is the full release record of one operator: every
// publication in order, plus the active and canary pointers (-1 = none).
type classHistory struct {
	name     string // display name
	releases []*Release
	active   int
	canary   int
}

// tagIndex resolves a tag to its release index, or -1.
func (h *classHistory) tagIndex(tag string) int {
	for i, rel := range h.releases {
		if rel.Tag == tag {
			return i
		}
	}
	return -1
}

// digestIndex resolves a content digest to its release index, or -1.
func (h *classHistory) digestIndex(digest string) int {
	for i, rel := range h.releases {
		if rel.Digest == digest {
			return i
		}
	}
	return -1
}

// Repository is the well-known code repository: a versioned,
// content-addressed release store. Administrators publish classes here;
// the QPC deploys them to remote sites on demand. Every publication is
// an immutable release — same-name/different-blob publishes never
// clobber history — and per-class active/canary pointers select which
// release new queries plan against.
type Repository struct {
	mu      sync.RWMutex
	classes map[string]*classHistory
}

// NewRepository returns an empty repository.
func NewRepository() *Repository {
	return &Repository{classes: make(map[string]*classHistory)}
}

// NewRepositoryFromRegistry registers every operator program of an
// operator registry — the usual bootstrap for the builtin library.
func NewRepositoryFromRegistry(reg *ops.Registry) *Repository {
	r := NewRepository()
	for _, name := range reg.Names() {
		d, _ := reg.Lookup(name)
		if _, err := r.PutProgram(d.Program()); err != nil {
			// Builtin operators are assembled (and therefore verified)
			// at init; a failure here is a programming error.
			panic(err)
		}
	}
	return r
}

// publish verifies p and records it as a release of its class. A blob
// already in the history is reused (publication is idempotent by
// digest); a new blob always allocates a new release, with the requested
// tag disambiguated if another blob already holds it. When activate is
// set the release becomes the class's active version.
func (r *Repository) publish(p *vm.Program, tag string, activate bool) (*Release, error) {
	info := p.Verified()
	if info == nil {
		if err := vm.Verify(p); err != nil {
			return nil, fmt.Errorf("catalog: publish %s: %w", p.Name, err)
		}
		info = p.Verified()
	}
	digest := p.Checksum()

	r.mu.Lock()
	defer r.mu.Unlock()
	key := strings.ToLower(p.Name)
	h, ok := r.classes[key]
	if !ok {
		h = &classHistory{name: p.Name, active: -1, canary: -1}
		r.classes[key] = h
	}
	if idx := h.digestIndex(digest); idx >= 0 {
		if activate {
			h.active = idx
			if h.canary == idx {
				h.canary = -1
			}
		}
		return h.releases[idx], nil
	}
	if tag == "" {
		tag = p.Version
	}
	tag = sanitizeTag(tag)
	if tag == "" {
		tag = fmt.Sprintf("r%d", len(h.releases)+1)
	}
	// The regression this store exists to prevent: a same-name publish
	// with different bytes must never replace an existing release. A
	// reused tag gets a "+rN" suffix so both releases stay addressable.
	if h.tagIndex(tag) >= 0 {
		tag = fmt.Sprintf("%s+r%d", tag, len(h.releases)+1)
	}
	rel := &Release{
		Class:     h.name,
		Tag:       tag,
		Digest:    digest,
		Caps:      append([]string(nil), info.Capabilities...),
		Cost:      info.Cost,
		Published: time.Now(),
		Seq:       len(h.releases) + 1,
		Blob:      p.Encode(),
	}
	h.releases = append(h.releases, rel)
	if activate {
		h.active = len(h.releases) - 1
	}
	return rel, nil
}

// PutProgram publishes a compiled program and activates it (the
// administrator's publish-and-go path). Publication is the trust
// boundary of the code repository: a program that fails the static
// verifier never becomes a release, so every site that later pulls the
// class knows it passed the ladder at least once (and re-verifies
// locally anyway, since the stamp does not travel on the wire).
func (r *Repository) PutProgram(p *vm.Program) (*Class, error) {
	rel, err := r.publish(p, "", true)
	if err != nil {
		return nil, err
	}
	return rel.AsClass(), nil
}

// StageProgram publishes a compiled program as a release without
// activating it — canary material for a ROLLOUT. An empty tag derives
// from the program's version directive.
func (r *Repository) StageProgram(p *vm.Program, tag string) (*Release, error) {
	return r.publish(p, tag, false)
}

// Get resolves a class by name to its active release.
func (r *Repository) Get(name string) (*Class, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	h, ok := r.classes[strings.ToLower(name)]
	if !ok || h.active < 0 {
		return nil, false
	}
	return h.releases[h.active].AsClass(), true
}

// Resolve addresses a class release by name and content digest — the
// deploy-by-digest path, which keeps in-flight queries pinned to the
// release they planned against regardless of later pointer moves.
func (r *Repository) Resolve(name, digest string) (*Class, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	h, ok := r.classes[strings.ToLower(name)]
	if !ok {
		return nil, false
	}
	idx := h.digestIndex(digest)
	if idx < 0 {
		return nil, false
	}
	return h.releases[idx].AsClass(), true
}

// Releases returns the full publication history of a class, oldest
// first.
func (r *Repository) Releases(name string) []*Release {
	r.mu.RLock()
	defer r.mu.RUnlock()
	h, ok := r.classes[strings.ToLower(name)]
	if !ok {
		return nil
	}
	return append([]*Release(nil), h.releases...)
}

// GetRelease resolves one release of a class by tag.
func (r *Repository) GetRelease(name, tag string) (*Release, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	h, ok := r.classes[strings.ToLower(name)]
	if !ok {
		return nil, false
	}
	idx := h.tagIndex(tag)
	if idx < 0 {
		return nil, false
	}
	return h.releases[idx], true
}

// ActiveRelease returns the class's active release, if any.
func (r *Repository) ActiveRelease(name string) (*Release, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	h, ok := r.classes[strings.ToLower(name)]
	if !ok || h.active < 0 {
		return nil, false
	}
	return h.releases[h.active], true
}

// CanaryRelease returns the class's canary release, if any.
func (r *Repository) CanaryRelease(name string) (*Release, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	h, ok := r.classes[strings.ToLower(name)]
	if !ok || h.canary < 0 {
		return nil, false
	}
	return h.releases[h.canary], true
}

// SetCanary points the class's canary at the release with the given
// tag. The canary must differ from the active release — canarying the
// version already serving traffic compares nothing.
func (r *Repository) SetCanary(name, tag string) (*Release, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.classes[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("catalog: no class named %q in the code repository", name)
	}
	idx := h.tagIndex(tag)
	if idx < 0 {
		return nil, fmt.Errorf("catalog: class %s has no release tagged %q", h.name, tag)
	}
	if idx == h.active {
		return nil, fmt.Errorf("catalog: release %s@%s is already active", h.name, tag)
	}
	h.canary = idx
	return h.releases[idx], nil
}

// ClearCanary drops the class's canary pointer (the rollback path).
// The release itself stays in the history, so in-flight queries pinned
// to its digest still resolve. Reports whether a canary was set.
func (r *Repository) ClearCanary(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.classes[strings.ToLower(name)]
	if !ok || h.canary < 0 {
		return false
	}
	h.canary = -1
	return true
}

// Promote moves the class's active pointer to the release with the
// given tag and clears the canary — the successful end of a rollout.
func (r *Repository) Promote(name, tag string) (*Release, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.classes[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("catalog: no class named %q in the code repository", name)
	}
	idx := h.tagIndex(tag)
	if idx < 0 {
		return nil, fmt.Errorf("catalog: class %s has no release tagged %q", h.name, tag)
	}
	h.active = idx
	h.canary = -1
	return h.releases[idx], nil
}

// Names lists registered classes, sorted.
func (r *Repository) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.classes))
	for _, h := range r.classes {
		out = append(out, h.name)
	}
	sort.Strings(out)
	return out
}
