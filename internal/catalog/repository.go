package catalog

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"mocha/internal/ops"
	"mocha/internal/vm"
)

// Class is one deployable unit of middleware code: the MVM analogue of a
// compiled Java class file stored in the well-known code repository of
// section 3.6.
type Class struct {
	Name     string
	Version  string
	Checksum string
	ModTime  time.Time
	Blob     []byte   // serialized vm.Program
	Caps     []string // host capabilities from the verifier's manifest
}

// Repository is the well-known code repository: administrators register
// classes here once, and the QPC deploys them to remote sites on demand.
type Repository struct {
	mu      sync.RWMutex
	classes map[string]*Class
}

// NewRepository returns an empty repository.
func NewRepository() *Repository {
	return &Repository{classes: make(map[string]*Class)}
}

// NewRepositoryFromRegistry registers every operator program of an
// operator registry — the usual bootstrap for the builtin library.
func NewRepositoryFromRegistry(reg *ops.Registry) *Repository {
	r := NewRepository()
	for _, name := range reg.Names() {
		d, _ := reg.Lookup(name)
		if _, err := r.PutProgram(d.Program()); err != nil {
			// Builtin operators are assembled (and therefore verified)
			// at init; a failure here is a programming error.
			panic(err)
		}
	}
	return r
}

// PutProgram registers (or upgrades) a compiled program. Publication is
// the trust boundary of the code repository: a program that fails the
// static verifier never becomes a class, so every site that later pulls
// the class knows it passed the ladder at least once (and re-verifies
// locally anyway, since the stamp does not travel on the wire).
func (r *Repository) PutProgram(p *vm.Program) (*Class, error) {
	info := p.Verified()
	if info == nil {
		if err := vm.Verify(p); err != nil {
			return nil, fmt.Errorf("catalog: publish %s: %w", p.Name, err)
		}
		info = p.Verified()
	}
	cls := &Class{
		Name:     p.Name,
		Version:  p.Version,
		Checksum: p.Checksum(),
		ModTime:  time.Now(),
		Blob:     p.Encode(),
		Caps:     append([]string(nil), info.Capabilities...),
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.classes[strings.ToLower(p.Name)] = cls
	return cls, nil
}

// Get resolves a class by name.
func (r *Repository) Get(name string) (*Class, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	c, ok := r.classes[strings.ToLower(name)]
	return c, ok
}

// Names lists registered classes, sorted.
func (r *Repository) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.classes))
	for _, c := range r.classes {
		out = append(out, c.Name)
	}
	sort.Strings(out)
	return out
}

// SaveDir writes each class blob as a .mvmc file in dir.
func (r *Repository) SaveDir(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, c := range r.classes {
		path := filepath.Join(dir, c.Name+".mvmc")
		if err := os.WriteFile(path, c.Blob, 0o644); err != nil {
			return err
		}
	}
	return nil
}

// LoadDir registers every .mvmc file found in dir.
func (r *Repository) LoadDir(dir string) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".mvmc") {
			continue
		}
		blob, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return err
		}
		p, err := vm.Decode(blob)
		if err != nil {
			return fmt.Errorf("catalog: class file %s: %w", e.Name(), err)
		}
		if _, err := r.PutProgram(p); err != nil {
			return fmt.Errorf("catalog: class file %s: %w", e.Name(), err)
		}
	}
	return nil
}
