package catalog

import (
	"encoding/xml"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"mocha/internal/vm"
)

// Release is one immutable, content-addressed publication of an operator
// class: the digest-addressed manifest entry (name, tag, blob digest,
// verifier capability manifest, publish time) plus the bytecode blob it
// names. Releases are never mutated or replaced — publishing the same
// class name with a different blob allocates a new release, and the
// per-class active/canary pointers select which one queries run.
type Release struct {
	// Class is the operator's display name (lookups are case-folded).
	Class string
	// Tag is the human-facing release tag ("1.0", "2.0+r3"). Unique per
	// class; auto-disambiguated at publish when a tag is reused for a
	// different blob.
	Tag string
	// Digest is the content address: the hex checksum of Blob, identical
	// to vm.Program.Checksum(). Two releases of a class never share it.
	Digest string
	// Caps is the verifier's host-capability manifest for the blob.
	Caps []string
	// Cost is the verifier's static cost-and-resource summary for the
	// blob, stamped at publish and re-checked on LoadDir like Digest.
	Cost vm.CostInfo
	// Published is the publication time.
	Published time.Time
	// Seq is the 1-based publication order within the class.
	Seq int
	// Blob is the serialized vm.Program.
	Blob []byte
}

// AsClass renders the release in the deployable-class view used by the
// planner and the code-shipping path.
func (r *Release) AsClass() *Class {
	return &Class{
		Name:     r.Class,
		Version:  r.Tag,
		Checksum: r.Digest,
		ModTime:  r.Published,
		Blob:     r.Blob,
		Caps:     r.Caps,
		Cost:     r.Cost,
	}
}

// tagOK reports whether every rune of a tag is filename- and XML-safe.
func tagOK(tag string) bool {
	if tag == "" {
		return false
	}
	for _, r := range tag {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
		case r == '.' || r == '_' || r == '+' || r == '-':
		default:
			return false
		}
	}
	return true
}

// sanitizeTag maps an arbitrary version string onto the tag charset.
func sanitizeTag(tag string) string {
	if tagOK(tag) {
		return tag
	}
	var b strings.Builder
	for _, r := range tag {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.' || r == '_' || r == '+' || r == '-':
			b.WriteRune(r)
		default:
			b.WriteByte('-')
		}
	}
	return b.String()
}

// Manifest persistence. SaveDir writes manifest.xml plus one blob file
// per release; LoadDir re-verifies every blob from scratch (zero-trust:
// the verification stamp never persists, and a digest recorded in the
// manifest must match the blob on disk byte for byte).

const manifestFile = "manifest.xml"

type manifestDoc struct {
	XMLName xml.Name        `xml:"code-repository"`
	Classes []manifestClass `xml:"class"`
}

type manifestClass struct {
	Name     string            `xml:"name,attr"`
	Active   string            `xml:"active,attr,omitempty"`
	Canary   string            `xml:"canary,attr,omitempty"`
	Releases []manifestRelease `xml:"release"`
}

type manifestRelease struct {
	Tag       string `xml:"tag,attr"`
	Digest    string `xml:"digest,attr"`
	Caps      string `xml:"caps,attr,omitempty"`
	Cost      string `xml:"cost,attr,omitempty"`
	Published string `xml:"published,attr,omitempty"`
	File      string `xml:"file,attr"`
}

// blobFile is the on-disk name of a release's bytecode.
func blobFile(class, tag string) string {
	return fmt.Sprintf("%s@%s.mvmc", class, tag)
}

// SaveDir persists the full release history: a manifest.xml naming every
// release (tag, digest, caps, publish time, active/canary pointers) and
// one content-addressed .mvmc blob per release.
func (r *Repository) SaveDir(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	r.mu.RLock()
	doc := manifestDoc{}
	type blob struct {
		file string
		data []byte
	}
	var blobs []blob
	names := make([]string, 0, len(r.classes))
	for k := range r.classes {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		h := r.classes[k]
		mc := manifestClass{Name: h.name}
		if h.active >= 0 {
			mc.Active = h.releases[h.active].Tag
		}
		if h.canary >= 0 {
			mc.Canary = h.releases[h.canary].Tag
		}
		for _, rel := range h.releases {
			file := blobFile(rel.Class, rel.Tag)
			mc.Releases = append(mc.Releases, manifestRelease{
				Tag:       rel.Tag,
				Digest:    rel.Digest,
				Caps:      strings.Join(rel.Caps, ","),
				Cost:      rel.Cost.String(),
				Published: rel.Published.UTC().Format(time.RFC3339Nano),
				File:      file,
			})
			blobs = append(blobs, blob{file: file, data: rel.Blob})
		}
		doc.Classes = append(doc.Classes, mc)
	}
	r.mu.RUnlock()

	data, err := xml.MarshalIndent(&doc, "", "  ")
	if err != nil {
		return fmt.Errorf("catalog: encode repository manifest: %w", err)
	}
	for _, b := range blobs {
		if err := os.WriteFile(filepath.Join(dir, b.file), b.data, 0o644); err != nil {
			return err
		}
	}
	return os.WriteFile(filepath.Join(dir, manifestFile), data, 0o644)
}

// LoadDir restores a repository directory. A directory with a
// manifest.xml is loaded as a full release history (every blob decoded,
// re-verified, and digest-checked against the manifest — tampering with
// either file is an error); a bare directory of .mvmc files is the
// legacy layout and each file is published as a fresh release.
func (r *Repository) LoadDir(dir string) error {
	data, err := os.ReadFile(filepath.Join(dir, manifestFile))
	if os.IsNotExist(err) {
		return r.loadLegacyDir(dir)
	}
	if err != nil {
		return err
	}
	var doc manifestDoc
	if err := xml.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("catalog: decode repository manifest: %w", err)
	}
	for _, mc := range doc.Classes {
		h := &classHistory{name: mc.Name, active: -1, canary: -1}
		for i, mr := range mc.Releases {
			blob, err := os.ReadFile(filepath.Join(dir, mr.File))
			if err != nil {
				return fmt.Errorf("catalog: release %s@%s: %w", mc.Name, mr.Tag, err)
			}
			p, err := vm.Decode(blob)
			if err != nil {
				return fmt.Errorf("catalog: release %s@%s: %w", mc.Name, mr.Tag, err)
			}
			// Zero-trust reload: the stored stamp never counts. Re-verify
			// the blob and recompute its digest; a mismatch against the
			// manifest means the blob or the manifest was altered.
			info, err := vm.Analyze(p)
			if err != nil {
				return fmt.Errorf("catalog: release %s@%s failed re-verification: %w", mc.Name, mr.Tag, err)
			}
			if got := p.Checksum(); got != mr.Digest {
				return fmt.Errorf("catalog: release %s@%s: blob digest %s does not match manifest digest %s",
					mc.Name, mr.Tag, got, mr.Digest)
			}
			if !strings.EqualFold(p.Name, mc.Name) {
				return fmt.Errorf("catalog: release %s@%s: blob is program %q", mc.Name, mr.Tag, p.Name)
			}
			// The cost stamp is re-checked like the digest: the recomputed
			// analysis must reproduce the manifest's summary exactly, so a
			// manifest promising a cheaper (or better-bounded) program than
			// the blob delivers is refused. Legacy manifests without a
			// stamp are accepted and filled from the recomputation.
			if mr.Cost != "" && mr.Cost != info.Cost.String() {
				return fmt.Errorf("catalog: release %s@%s: blob cost %q does not match manifest cost %q",
					mc.Name, mr.Tag, info.Cost.String(), mr.Cost)
			}
			pub, _ := time.Parse(time.RFC3339Nano, mr.Published)
			h.releases = append(h.releases, &Release{
				Class:     mc.Name,
				Tag:       mr.Tag,
				Digest:    mr.Digest,
				Caps:      append([]string(nil), info.Capabilities...),
				Cost:      info.Cost,
				Published: pub,
				Seq:       i + 1,
				Blob:      blob,
			})
		}
		if mc.Active != "" {
			idx := h.tagIndex(mc.Active)
			if idx < 0 {
				return fmt.Errorf("catalog: class %s: active tag %q not in manifest", mc.Name, mc.Active)
			}
			h.active = idx
		}
		if mc.Canary != "" {
			idx := h.tagIndex(mc.Canary)
			if idx < 0 {
				return fmt.Errorf("catalog: class %s: canary tag %q not in manifest", mc.Name, mc.Canary)
			}
			h.canary = idx
		}
		r.mu.Lock()
		r.classes[strings.ToLower(mc.Name)] = h
		r.mu.Unlock()
	}
	return nil
}

// loadLegacyDir publishes every bare .mvmc file in dir (the pre-release
// on-disk layout, one blob per class, no manifest).
func (r *Repository) loadLegacyDir(dir string) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".mvmc") {
			continue
		}
		blob, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return err
		}
		p, err := vm.Decode(blob)
		if err != nil {
			return fmt.Errorf("catalog: class file %s: %w", e.Name(), err)
		}
		if _, err := r.PutProgram(p); err != nil {
			return fmt.Errorf("catalog: class file %s: %w", e.Name(), err)
		}
	}
	return nil
}
