package catalog

import (
	"fmt"
	"sort"

	"mocha/internal/types"
)

// Placement kinds. A range placement carries per-partition [Lo, Hi)
// bounds on an integer partition key; a hash placement assigns each key
// to bucket Small.Hash() % len(Parts).
const (
	PlaceRange = "range"
	PlaceHash  = "hash"
)

// Partition is one shard of a partitioned table: the physical table
// name holding the shard's rows, the replica sites that store an exact
// copy (Replicas[0] is the primary, the replica plans prefer), and the
// key bounds or hash bucket selecting rows into it.
type Partition struct {
	Table    string   `xml:"table,attr"`
	Replicas []string `xml:"replica"`

	// Range placements: the shard holds keys k with
	// (!HasLo || k >= Lo) && (!HasHi || k < Hi).
	HasLo bool  `xml:"has-lo,attr,omitempty"`
	HasHi bool  `xml:"has-hi,attr,omitempty"`
	Lo    int64 `xml:"lo,attr,omitempty"`
	Hi    int64 `xml:"hi,attr,omitempty"`

	// Hash placements: the shard's bucket index (== its position).
	Bucket int `xml:"bucket,attr,omitempty"`
}

// Placement describes how a logical table is sharded across the fleet:
// the partition key column, the partitioning kind, and the shards in
// partition order. Partition order is semantic — a partitioned scan
// delivers shard streams concatenated in this order, so results stay
// byte-identical to a single table stored in the same concatenation.
type Placement struct {
	Key   string      `xml:"key,attr"`
	Kind  string      `xml:"kind,attr"`
	Parts []Partition `xml:"part"`
}

// Validate checks the placement against the logical schema and the set
// of known sites. It enforces the invariants the planner and the
// failover machinery rely on: a known key column, at least one shard,
// every shard named and replicated on known sites, contiguous hash
// buckets, and non-inverted range bounds.
func (p *Placement) Validate(schema types.Schema, knownSite func(string) bool) error {
	if p.Kind != PlaceRange && p.Kind != PlaceHash {
		return fmt.Errorf("placement kind %q: want %q or %q", p.Kind, PlaceRange, PlaceHash)
	}
	if schema.ColumnIndex(p.Key) < 0 {
		return fmt.Errorf("placement key %q is not a column", p.Key)
	}
	if len(p.Parts) == 0 {
		return fmt.Errorf("placement has no partitions")
	}
	for i, part := range p.Parts {
		if part.Table == "" {
			return fmt.Errorf("partition %d has no physical table name", i)
		}
		if len(part.Replicas) == 0 {
			return fmt.Errorf("partition %d (%s) has no replicas", i, part.Table)
		}
		seen := map[string]bool{}
		for _, site := range part.Replicas {
			if seen[site] {
				return fmt.Errorf("partition %d (%s) lists replica site %q twice", i, part.Table, site)
			}
			seen[site] = true
			if knownSite != nil && !knownSite(site) {
				return fmt.Errorf("partition %d (%s) replicates on unknown site %q", i, part.Table, site)
			}
		}
		switch p.Kind {
		case PlaceHash:
			if part.Bucket != i {
				return fmt.Errorf("partition %d (%s) has bucket %d; hash buckets must be contiguous", i, part.Table, part.Bucket)
			}
		case PlaceRange:
			if part.HasLo && part.HasHi && part.Lo >= part.Hi {
				return fmt.Errorf("partition %d (%s) has empty range [%d, %d)", i, part.Table, part.Lo, part.Hi)
			}
		}
	}
	return nil
}

// HashBucket maps a partition-key value to its bucket among n, using
// the type system's canonical Small hash — the single routing function
// shared by data loading and predicate pruning. The second result is
// false for values that cannot be hashed (large objects, nulls).
func HashBucket(v types.Object, n int) (int, bool) {
	s, ok := v.(types.Small)
	if !ok || n <= 0 {
		return 0, false
	}
	if _, isNull := v.(types.Null); isNull {
		return 0, false
	}
	return int(s.Hash() % uint64(n)), true
}

// IntKey extracts the int64 partition-key value range placements
// compare against. Only integer keys range-partition.
func IntKey(v types.Object) (int64, bool) {
	i, ok := v.(types.Int)
	if !ok {
		return 0, false
	}
	return int64(i), true
}

// Route returns the index of the partition that stores a row whose
// partition key is v.
func (p *Placement) Route(v types.Object) (int, error) {
	switch p.Kind {
	case PlaceHash:
		b, ok := HashBucket(v, len(p.Parts))
		if !ok {
			return 0, fmt.Errorf("placement: cannot hash key value %v", v)
		}
		return b, nil
	case PlaceRange:
		k, ok := IntKey(v)
		if !ok {
			return 0, fmt.Errorf("placement: range key value %v is not an integer", v)
		}
		for i, part := range p.Parts {
			if (!part.HasLo || k >= part.Lo) && (!part.HasHi || k < part.Hi) {
				return i, nil
			}
		}
		return 0, fmt.Errorf("placement: key %d falls in no partition range", k)
	}
	return 0, fmt.Errorf("placement: unknown kind %q", p.Kind)
}

// HoldsRange reports whether partition i can hold any key in the
// interval described by (lo, hasLo) inclusive and (hi, hasHi)
// inclusive. Unbounded ends match everything on that side.
func (p *Placement) HoldsRange(i int, lo int64, hasLo bool, hi int64, hasHi bool) bool {
	part := p.Parts[i]
	if hasHi && part.HasLo && hi < part.Lo {
		return false
	}
	if hasLo && part.HasHi && lo >= part.Hi {
		return false
	}
	return true
}

// Sites returns the sorted set of sites holding at least one replica.
func (p *Placement) Sites() []string {
	seen := map[string]bool{}
	for _, part := range p.Parts {
		for _, s := range part.Replicas {
			seen[s] = true
		}
	}
	out := make([]string, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Clone deep-copies the placement so callers can hold it without
// aliasing catalog state.
func (p *Placement) Clone() *Placement {
	if p == nil {
		return nil
	}
	c := &Placement{Key: p.Key, Kind: p.Kind, Parts: make([]Partition, len(p.Parts))}
	for i, part := range p.Parts {
		c.Parts[i] = part
		c.Parts[i].Replicas = append([]string(nil), part.Replicas...)
	}
	return c
}
