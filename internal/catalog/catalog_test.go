package catalog

import (
	"path/filepath"
	"strings"
	"testing"

	"mocha/internal/ops"
	"mocha/internal/types"
	"mocha/internal/vm"
)

func testCatalog(t *testing.T) *Catalog {
	t.Helper()
	reg := ops.Builtins()
	c := New(reg, NewRepositoryFromRegistry(reg))
	c.AddSite(&Site{Name: "maryland", Addr: "dap://maryland"})
	err := c.AddTable(&TableDef{
		Name: "Rasters", URI: "mocha://tables/Rasters", Site: "maryland",
		Schema: types.NewSchema(
			types.Column{Name: "time", Kind: types.KindInt},
			types.Column{Name: "band", Kind: types.KindInt},
			types.Column{Name: "location", Kind: types.KindRectangle},
			types.Column{Name: "image", Kind: types.KindRaster},
		),
		Stats: TableStats{RowCount: 200, Columns: []ColumnStats{
			{Name: "time", AvgBytes: 4}, {Name: "band", AvgBytes: 4},
			{Name: "location", AvgBytes: 16}, {Name: "image", AvgBytes: 1 << 20},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCatalogLookups(t *testing.T) {
	c := testCatalog(t)
	tbl, ok := c.Table("rasters") // case-insensitive
	if !ok || tbl.Name != "Rasters" {
		t.Fatal("table lookup failed")
	}
	if tbl.Stats.AvgTupleBytes() != 4+4+16+(1<<20) {
		t.Errorf("avg tuple bytes = %d", tbl.Stats.AvgTupleBytes())
	}
	if tbl.Stats.AvgColBytes("IMAGE") != 1<<20 || tbl.Stats.AvgColBytes("nope") != 0 {
		t.Error("column stats lookup broken")
	}
	if _, ok := c.Table("Missing"); ok {
		t.Error("phantom table")
	}
	if _, ok := c.SiteByName("maryland"); !ok {
		t.Error("site lookup failed")
	}
	if names := c.TableNames(); len(names) != 1 || names[0] != "Rasters" {
		t.Errorf("names = %v", names)
	}
}

func TestCatalogValidation(t *testing.T) {
	c := testCatalog(t)
	dup := &TableDef{Name: "RASTERS", Site: "maryland"}
	if err := c.AddTable(dup); err == nil {
		t.Error("duplicate table accepted")
	}
	orphan := &TableDef{Name: "Other", Site: "nowhere"}
	if err := c.AddTable(orphan); err == nil {
		t.Error("table with unknown site accepted")
	}
}

func TestSelectivity(t *testing.T) {
	c := testCatalog(t)
	if sf := c.Selectivity("NumVertices", "Graphs"); sf != DefaultSelectivity {
		t.Errorf("default sf = %g", sf)
	}
	c.SetSelectivity("NumVertices", "Graphs", 0.5)
	if sf := c.Selectivity("numvertices", "GRAPHS"); sf != 0.5 {
		t.Errorf("sf = %g", sf)
	}
}

func TestCatalogSaveLoad(t *testing.T) {
	c := testCatalog(t)
	c.SetSelectivity("NumVertices", "Rasters", 0.25)
	path := filepath.Join(t.TempDir(), "catalog.xml")
	if err := c.Save(path); err != nil {
		t.Fatal(err)
	}
	reg := ops.Builtins()
	c2 := New(reg, NewRepositoryFromRegistry(reg))
	if err := c2.Load(path); err != nil {
		t.Fatal(err)
	}
	tbl, ok := c2.Table("Rasters")
	if !ok {
		t.Fatal("table lost across save/load")
	}
	if tbl.Site != "maryland" || tbl.Schema.Arity() != 4 || tbl.Stats.RowCount != 200 {
		t.Errorf("table damaged: %+v", tbl)
	}
	if tbl.Schema.Columns[3].Kind != types.KindRaster {
		t.Error("column kind lost")
	}
	if sf := c2.Selectivity("NumVertices", "Rasters"); sf != 0.25 {
		t.Errorf("selectivity lost: %g", sf)
	}
	if _, ok := c2.SiteByName("maryland"); !ok {
		t.Error("site lost")
	}
}

func TestRepository(t *testing.T) {
	reg := ops.Builtins()
	repo := NewRepositoryFromRegistry(reg)
	cls, ok := repo.Get("AvgEnergy")
	if !ok {
		t.Fatal("AvgEnergy not in repository")
	}
	p, err := vm.Decode(cls.Blob)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "AvgEnergy" || p.Checksum() != cls.Checksum {
		t.Error("blob does not match class metadata")
	}
	if len(repo.Names()) < 13 {
		t.Errorf("repository has %d classes", len(repo.Names()))
	}
	// Upgrade replaces.
	p2 := vm.MustAssemble("program AvgEnergy version 2.0\nfunc eval args=1 locals=0\narg 0\nret\nend")
	if _, err := repo.PutProgram(p2); err != nil {
		t.Fatal(err)
	}
	cls2, _ := repo.Get("avgenergy")
	if cls2.Version != "2.0" {
		t.Error("upgrade did not replace class")
	}
}

func TestRepositorySaveLoadDir(t *testing.T) {
	reg := ops.Builtins()
	repo := NewRepositoryFromRegistry(reg)
	dir := t.TempDir()
	if err := repo.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	repo2 := NewRepository()
	if err := repo2.LoadDir(dir); err != nil {
		t.Fatal(err)
	}
	if len(repo2.Names()) != len(repo.Names()) {
		t.Errorf("loaded %d classes, want %d", len(repo2.Names()), len(repo.Names()))
	}
	a, _ := repo.Get("Clip")
	b, _ := repo2.Get("Clip")
	if a.Checksum != b.Checksum {
		t.Error("checksums differ after disk round trip")
	}
}

func TestRDFDocuments(t *testing.T) {
	c := testCatalog(t)
	d, _ := c.Ops().Lookup("AvgEnergy")
	data, err := OperatorRDF(d)
	if err != nil {
		t.Fatal(err)
	}
	text := string(data)
	for _, want := range []string{"mocha://ops/AvgEnergy#1.0", "operator", "AvgEnergy", "(RASTER) -&gt; DOUBLE"} {
		if !strings.Contains(text, want) {
			t.Errorf("operator RDF missing %q:\n%s", want, text)
		}
	}
	doc, err := ParseRDF(data)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Description.About != d.URI || doc.Description.Name != "AvgEnergy" {
		t.Errorf("parsed RDF = %+v", doc.Description)
	}

	tbl, _ := c.Table("Rasters")
	data, err = TableRDF(tbl)
	if err != nil {
		t.Fatal(err)
	}
	doc, err = ParseRDF(data)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Description.Kind != "table" || doc.Description.RowCount != 200 {
		t.Errorf("table RDF = %+v", doc.Description)
	}
	if len(doc.Description.Properties) != 4 {
		t.Errorf("column properties = %v", doc.Description.Properties)
	}
	if _, err := ParseRDF([]byte("not xml")); err == nil {
		t.Error("garbage RDF accepted")
	}
}
