package catalog

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"

	"mocha/internal/ops"
	"mocha/internal/vm"
)

// prog assembles a distinct single-function program: varying n varies
// the bytecode and therefore the content digest.
func prog(t *testing.T, name, version string, n int) *vm.Program {
	t.Helper()
	src := fmt.Sprintf("program %s version %s\nfunc eval args=1 locals=0\npushi %d\nret\nend",
		name, version, n)
	p, err := vm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestPutProgramNeverClobbers pins the regression the release store
// exists to prevent: publishing a class with an existing name but
// different bytecode must allocate a new release, never overwrite the
// old one — the old digest stays resolvable for in-flight queries.
func TestPutProgramNeverClobbers(t *testing.T) {
	repo := NewRepository()
	v1 := prog(t, "Clip", "1.0", 1)
	v2 := prog(t, "Clip", "1.0", 2) // same name, same version tag, different body
	if v1.Checksum() == v2.Checksum() {
		t.Fatal("test programs share a digest")
	}
	if _, err := repo.PutProgram(v1); err != nil {
		t.Fatal(err)
	}
	if _, err := repo.PutProgram(v2); err != nil {
		t.Fatal(err)
	}
	rels := repo.Releases("clip")
	if len(rels) != 2 {
		t.Fatalf("want 2 releases, got %d", len(rels))
	}
	// The second publish is active; the first is still addressable by
	// its digest (deploy-by-digest for queries planned against it).
	active, _ := repo.Get("Clip")
	if active.Checksum != v2.Checksum() {
		t.Errorf("active digest = %s, want v2 %s", active.Checksum, v2.Checksum())
	}
	old, ok := repo.Resolve("Clip", v1.Checksum())
	if !ok {
		t.Fatal("v1 digest no longer resolvable after same-name publish")
	}
	if string(old.Blob) != string(v1.Encode()) {
		t.Error("v1 blob was rewritten")
	}
	// Reused tags are disambiguated, not replaced.
	if rels[0].Tag == rels[1].Tag {
		t.Errorf("both releases hold tag %q", rels[0].Tag)
	}
	// Republishing identical bytes is idempotent: no third release.
	if _, err := repo.PutProgram(v1); err != nil {
		t.Fatal(err)
	}
	if got := len(repo.Releases("Clip")); got != 2 {
		t.Errorf("idempotent republish grew history to %d", got)
	}
	active, _ = repo.Get("Clip")
	if active.Checksum != v1.Checksum() {
		t.Error("republish did not move the active pointer back")
	}
}

func TestStageCanaryPromote(t *testing.T) {
	repo := NewRepository()
	v1 := prog(t, "Scale", "1.0", 10)
	v2 := prog(t, "Scale", "2.0", 20)
	if _, err := repo.PutProgram(v1); err != nil {
		t.Fatal(err)
	}
	rel, err := repo.StageProgram(v2, "v2")
	if err != nil {
		t.Fatal(err)
	}
	if rel.Tag != "v2" || rel.Digest != v2.Checksum() {
		t.Fatalf("staged release = %+v", rel)
	}
	// Staging is inert: active still serves v1, no canary yet.
	if cls, _ := repo.Get("Scale"); cls.Checksum != v1.Checksum() {
		t.Error("staging moved the active pointer")
	}
	if _, ok := repo.CanaryRelease("Scale"); ok {
		t.Error("staging set a canary")
	}
	if _, err := repo.SetCanary("Scale", "v2"); err != nil {
		t.Fatal(err)
	}
	if can, ok := repo.CanaryRelease("scale"); !ok || can.Digest != v2.Checksum() {
		t.Error("canary pointer not set")
	}
	// Canarying the active release is meaningless and rejected.
	activeRel, _ := repo.ActiveRelease("Scale")
	if _, err := repo.SetCanary("Scale", activeRel.Tag); err == nil {
		t.Error("canarying the active release accepted")
	}
	if _, err := repo.SetCanary("Scale", "ghost"); err == nil {
		t.Error("canarying an unknown tag accepted")
	}
	if _, err := repo.SetCanary("Ghost", "v2"); err == nil {
		t.Error("canarying an unknown class accepted")
	}
	// Rollback: pointer cleared, history intact, digest still resolvable.
	if !repo.ClearCanary("Scale") {
		t.Error("ClearCanary found nothing to clear")
	}
	if repo.ClearCanary("Scale") {
		t.Error("second ClearCanary reported a canary")
	}
	if _, ok := repo.Resolve("Scale", v2.Checksum()); !ok {
		t.Error("rolled-back release vanished from history")
	}
	// Promote: active moves, canary clears.
	if _, err := repo.SetCanary("Scale", "v2"); err != nil {
		t.Fatal(err)
	}
	if _, err := repo.Promote("Scale", "v2"); err != nil {
		t.Fatal(err)
	}
	if cls, _ := repo.Get("Scale"); cls.Checksum != v2.Checksum() {
		t.Error("promote did not move the active pointer")
	}
	if _, ok := repo.CanaryRelease("Scale"); ok {
		t.Error("promote left the canary pointer set")
	}
}

func TestTagSanitization(t *testing.T) {
	repo := NewRepository()
	if _, err := repo.PutProgram(prog(t, "Pad", "1.0", 1)); err != nil {
		t.Fatal(err)
	}
	rel, err := repo.StageProgram(prog(t, "Pad", "1.0", 2), "v 2/bad")
	if err != nil {
		t.Fatal(err)
	}
	if strings.ContainsAny(rel.Tag, " /") {
		t.Errorf("tag %q kept unsafe runes", rel.Tag)
	}
}

// TestManifestRoundTrip persists a repository with a staged canary and
// reloads it: histories, pointers, tags and capability manifests must
// survive, and every blob is re-verified on the way in (zero trust in
// the disk).
func TestManifestRoundTrip(t *testing.T) {
	reg := ops.Builtins()
	repo := NewRepositoryFromRegistry(reg)
	if _, err := repo.StageProgram(prog(t, "AvgEnergy", "2.0", 42), "v2"); err != nil {
		t.Fatal(err)
	}
	if _, err := repo.SetCanary("AvgEnergy", "v2"); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := repo.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	repo2 := NewRepository()
	if err := repo2.LoadDir(dir); err != nil {
		t.Fatal(err)
	}
	if len(repo2.Names()) != len(repo.Names()) {
		t.Fatalf("loaded %d classes, want %d", len(repo2.Names()), len(repo.Names()))
	}
	if len(repo2.Releases("AvgEnergy")) != 2 {
		t.Errorf("release history not preserved: %d entries", len(repo2.Releases("AvgEnergy")))
	}
	a1, _ := repo.ActiveRelease("AvgEnergy")
	a2, ok := repo2.ActiveRelease("AvgEnergy")
	if !ok || a1.Digest != a2.Digest {
		t.Error("active pointer lost in round trip")
	}
	c2, ok := repo2.CanaryRelease("AvgEnergy")
	if !ok || c2.Tag != "v2" {
		t.Error("canary pointer lost in round trip")
	}
	// Capability manifests come from the local verifier, not the
	// manifest file, and must match what publication recorded.
	for _, name := range repo.Names() {
		r1, _ := repo.ActiveRelease(name)
		r2, _ := repo2.ActiveRelease(name)
		if strings.Join(r1.Caps, ",") != strings.Join(r2.Caps, ",") {
			t.Errorf("%s caps: %v != %v", name, r1.Caps, r2.Caps)
		}
	}
}

// TestLoadDirTamper flips a byte inside a persisted blob: the load must
// refuse the directory (digest mismatch against the manifest).
func TestLoadDirTamper(t *testing.T) {
	repo := NewRepository()
	if _, err := repo.PutProgram(prog(t, "Tamper", "1.0", 7)); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := repo.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".mvmc") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)-1] ^= 0xff
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := NewRepository().LoadDir(dir); err == nil {
		t.Fatal("tampered blob accepted")
	}
}

// TestQuickPublishResolve property-tests the content addressing:
// whatever gets published resolves by its digest with the exact blob
// bytes, and same-digest publishes stay idempotent.
func TestQuickPublishResolve(t *testing.T) {
	repo := NewRepository()
	seen := make(map[string]bool)
	f := func(n int16) bool {
		p := prog(t, "Quick", "1.0", int(n))
		rel, err := repo.StageProgram(p, fmt.Sprintf("t%d", n))
		if err != nil {
			return false
		}
		if rel.Digest != p.Checksum() {
			return false
		}
		cls, ok := repo.Resolve("Quick", rel.Digest)
		if !ok || string(cls.Blob) != string(p.Encode()) {
			return false
		}
		seen[rel.Digest] = true
		return len(repo.Releases("Quick")) == len(seen)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestLoadLegacyDir: a pre-release classes directory (bare .mvmc blobs,
// no manifest) still loads — each blob is published as a release.
func TestLoadLegacyDir(t *testing.T) {
	p := prog(t, "Legacy", "1.0", 5)
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "Legacy.mvmc"), p.Encode(), 0o644); err != nil {
		t.Fatal(err)
	}
	repo := NewRepository()
	if err := repo.LoadDir(dir); err != nil {
		t.Fatal(err)
	}
	cls, ok := repo.Get("Legacy")
	if !ok || cls.Checksum != p.Checksum() {
		t.Fatalf("legacy class not published: %+v", cls)
	}
	// A corrupt legacy blob refuses the load.
	if err := os.WriteFile(filepath.Join(dir, "Junk.mvmc"), []byte("not bytecode"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := NewRepository().LoadDir(dir); err == nil {
		t.Error("corrupt legacy blob accepted")
	}
}

// TestGetReleaseByTag covers tag-addressed resolution, including the
// empty tag (no release) and unknown classes.
func TestGetReleaseByTag(t *testing.T) {
	reg := ops.Builtins()
	c := New(reg, NewRepositoryFromRegistry(reg))
	repo := c.Repo()
	if _, err := repo.StageProgram(prog(t, "AvgEnergy", "2.0", 9), "v2"); err != nil {
		t.Fatal(err)
	}
	rel, ok := repo.GetRelease("avgenergy", "v2")
	if !ok || rel.Tag != "v2" {
		t.Fatalf("GetRelease = %+v, %v", rel, ok)
	}
	if _, ok := repo.GetRelease("AvgEnergy", "ghost"); ok {
		t.Error("unknown tag resolved")
	}
	if _, ok := repo.GetRelease("Ghost", "v2"); ok {
		t.Error("unknown class resolved")
	}
}

// TestLoadDirCostStamp pins the cost side of the zero-trust reload: the
// manifest carries the verifier's static cost summary, a round trip
// preserves it, and a manifest whose cost stamp disagrees with the
// recomputed analysis is refused — a manifest cannot promise a cheaper
// program than the blob delivers.
func TestLoadDirCostStamp(t *testing.T) {
	repo := NewRepository()
	rel, err := repo.PutProgram(prog(t, "Costed", "1.0", 7))
	if err != nil {
		t.Fatal(err)
	}
	if rel.Cost.IsZero() || !rel.Cost.Bounded {
		t.Fatalf("publish did not stamp a bounded cost: %+v", rel.Cost)
	}
	dir := t.TempDir()
	if err := repo.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	manifest, err := os.ReadFile(filepath.Join(dir, manifestFile))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(manifest), `cost="`+rel.Cost.String()+`"`) {
		t.Fatalf("manifest missing cost stamp %q:\n%s", rel.Cost.String(), manifest)
	}

	repo2 := NewRepository()
	if err := repo2.LoadDir(dir); err != nil {
		t.Fatal(err)
	}
	rel2, ok := repo2.ActiveRelease("Costed")
	if !ok || rel2.Cost != rel.Cost {
		t.Fatalf("cost lost in round trip: %+v vs %+v", rel2.Cost, rel.Cost)
	}

	// Tamper: claim a one-instruction budget in the manifest.
	cheaper := rel.Cost
	cheaper.BudgetInstrs = 1
	doctored := strings.Replace(string(manifest), rel.Cost.String(), cheaper.String(), 1)
	if doctored == string(manifest) {
		t.Fatal("failed to doctor manifest")
	}
	if err := os.WriteFile(filepath.Join(dir, manifestFile), []byte(doctored), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := NewRepository().LoadDir(dir); err == nil ||
		!strings.Contains(err.Error(), "cost") {
		t.Fatalf("doctored cost stamp accepted: %v", err)
	}
}
