package catalog

import (
	"encoding/xml"
	"fmt"
	"math/rand"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"mocha/internal/types"
)

func testPlacement() *Placement {
	return &Placement{
		Key: "time", Kind: PlaceRange,
		Parts: []Partition{
			{Table: "Rasters__p0", Replicas: []string{"maryland", "virginia"}, HasHi: true, Hi: 100},
			{Table: "Rasters__p1", Replicas: []string{"virginia", "maryland"}, HasLo: true, Lo: 100},
		},
	}
}

func placementSchema() types.Schema {
	return types.NewSchema(
		types.Column{Name: "time", Kind: types.KindInt},
		types.Column{Name: "band", Kind: types.KindInt},
	)
}

func TestPlacementValidate(t *testing.T) {
	known := func(s string) bool { return s == "maryland" || s == "virginia" }
	schema := placementSchema()
	if err := testPlacement().Validate(schema, known); err != nil {
		t.Fatalf("valid placement rejected: %v", err)
	}

	break_ := func(f func(*Placement)) *Placement {
		p := testPlacement()
		f(p)
		return p
	}
	cases := []struct {
		name string
		p    *Placement
		want string
	}{
		{"bad-kind", break_(func(p *Placement) { p.Kind = "round-robin" }), "kind"},
		{"unknown-key", break_(func(p *Placement) { p.Key = "nope" }), "not a column"},
		{"no-parts", break_(func(p *Placement) { p.Parts = nil }), "no partitions"},
		{"unnamed-part", break_(func(p *Placement) { p.Parts[0].Table = "" }), "no physical table"},
		{"no-replicas", break_(func(p *Placement) { p.Parts[1].Replicas = nil }), "no replicas"},
		{"dup-replica", break_(func(p *Placement) {
			p.Parts[0].Replicas = []string{"maryland", "maryland"}
		}), "twice"},
		{"unknown-site", break_(func(p *Placement) {
			p.Parts[0].Replicas = []string{"atlantis"}
		}), "unknown site"},
		{"inverted-range", break_(func(p *Placement) {
			p.Parts[1].HasHi, p.Parts[1].Hi = true, 50
		}), "empty range"},
		{"bad-buckets", &Placement{
			Key: "time", Kind: PlaceHash,
			Parts: []Partition{
				{Table: "a", Replicas: []string{"maryland"}, Bucket: 1},
				{Table: "b", Replicas: []string{"maryland"}, Bucket: 0},
			},
		}, "contiguous"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.p.Validate(schema, known)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %v should mention %q", err, tc.want)
			}
		})
	}
}

func TestPlacementRoute(t *testing.T) {
	p := testPlacement()
	for _, tc := range []struct {
		key  int64
		want int
	}{{-50, 0}, {0, 0}, {99, 0}, {100, 1}, {1 << 20, 1}} {
		got, err := p.Route(types.Int(tc.key))
		if err != nil {
			t.Fatal(err)
		}
		if got != tc.want {
			t.Errorf("Route(%d) = %d, want %d", tc.key, got, tc.want)
		}
	}
	if _, err := p.Route(types.String_("x")); err == nil {
		t.Error("range routing a string key should fail")
	}

	h := &Placement{Key: "time", Kind: PlaceHash, Parts: []Partition{
		{Table: "a", Replicas: []string{"maryland"}, Bucket: 0},
		{Table: "b", Replicas: []string{"maryland"}, Bucket: 1},
		{Table: "c", Replicas: []string{"maryland"}, Bucket: 2},
	}}
	counts := make([]int, 3)
	for v := int64(0); v < 300; v++ {
		pi, err := h.Route(types.Int(v))
		if err != nil {
			t.Fatal(err)
		}
		counts[pi]++
	}
	for b, n := range counts {
		if n == 0 {
			t.Errorf("bucket %d got no keys of 300 — hash routing degenerate", b)
		}
	}
	if _, err := h.Route(types.Null{}); err == nil {
		t.Error("hash routing a NULL key should fail")
	}
}

func TestPlacementSitesAndClone(t *testing.T) {
	p := testPlacement()
	if got := p.Sites(); !reflect.DeepEqual(got, []string{"maryland", "virginia"}) {
		t.Errorf("Sites() = %v", got)
	}
	c := p.Clone()
	if !reflect.DeepEqual(c, p) {
		t.Fatal("clone differs")
	}
	c.Parts[0].Replicas[0] = "mars"
	if p.Parts[0].Replicas[0] != "maryland" {
		t.Fatal("clone aliases replica slice")
	}
	var nilP *Placement
	if nilP.Clone() != nil {
		t.Fatal("nil clone should stay nil")
	}
}

// TestPlacedTableSaveLoad round-trips a catalog holding a partitioned
// table through its XML persistence.
func TestPlacedTableSaveLoad(t *testing.T) {
	c := testCatalog(t)
	c.AddSite(&Site{Name: "virginia", Addr: "dap://virginia"})
	def := &TableDef{
		Name: "Sharded", URI: "mocha://partitioned/Sharded", Site: "maryland",
		Schema:    placementSchema(),
		Stats:     TableStats{RowCount: 100},
		Placement: testPlacement(),
	}
	if err := c.AddTable(def); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "catalog.xml")
	if err := c.Save(path); err != nil {
		t.Fatal(err)
	}
	c2 := New(nil, nil)
	if err := c2.Load(path); err != nil {
		t.Fatal(err)
	}
	got, ok := c2.Table("Sharded")
	if !ok {
		t.Fatal("placed table lost across save/load")
	}
	if !reflect.DeepEqual(got.Placement, def.Placement) {
		t.Fatalf("placement damaged:\n got %+v\nwant %+v", got.Placement, def.Placement)
	}
	// Unplaced tables stay unplaced.
	if tbl, _ := c2.Table("Rasters"); tbl.Placement != nil {
		t.Fatal("unplaced table grew a placement")
	}
}

// TestCatalogRejectsInvalidPlacement pins that AddTable runs placement
// validation: a placement naming an unregistered replica site is
// refused, like an unknown home site.
func TestCatalogRejectsInvalidPlacement(t *testing.T) {
	c := testCatalog(t)
	def := &TableDef{
		Name: "Bad", Site: "maryland", Schema: placementSchema(),
		Placement: &Placement{Key: "time", Kind: PlaceRange, Parts: []Partition{
			{Table: "Bad__p0", Replicas: []string{"atlantis"}},
		}},
	}
	if err := c.AddTable(def); err == nil || !strings.Contains(err.Error(), "unknown site") {
		t.Fatalf("invalid placement accepted: %v", err)
	}
}

// TestHoldsRange pins the interval test pruning runs per shard: a
// partition survives iff the predicate's [lo, hi] interval intersects
// its [Lo, Hi) range, with unbounded ends matching everything.
func TestHoldsRange(t *testing.T) {
	p := &Placement{Key: "time", Kind: PlaceRange, Parts: []Partition{
		{Table: "T__p0", HasHi: true, Hi: 10},
		{Table: "T__p1", HasLo: true, Lo: 10, HasHi: true, Hi: 20},
		{Table: "T__p2", HasLo: true, Lo: 20},
	}}
	cases := []struct {
		part  int
		lo    int64
		hasLo bool
		hi    int64
		hasHi bool
		want  bool
		why   string
	}{
		{0, 0, false, 0, false, true, "unbounded matches every shard"},
		{0, 10, true, 0, false, false, "lo at the shard's exclusive Hi"},
		{0, 9, true, 0, false, true, "lo just under the shard's Hi"},
		{1, 0, false, 9, true, false, "hi below the shard's Lo"},
		{1, 0, false, 10, true, true, "inclusive hi at the shard's Lo"},
		{1, 15, true, 15, true, true, "point inside the shard"},
		{2, 0, false, 19, true, false, "hi below the last shard"},
		{2, 100, true, 0, false, true, "last shard is unbounded above"},
	}
	for _, c := range cases {
		if got := p.HoldsRange(c.part, c.lo, c.hasLo, c.hi, c.hasHi); got != c.want {
			t.Errorf("HoldsRange(p%d, lo=%d/%v, hi=%d/%v) = %v: %s",
				c.part, c.lo, c.hasLo, c.hi, c.hasHi, got, c.why)
		}
	}
}

// randomPlacement generates a structurally valid placement for the
// quick round-trip (XML omits zero fields, so only canonical forms —
// e.g. bucket == index — survive unchanged).
func randomPlacement(r *rand.Rand) *Placement {
	kinds := []string{PlaceRange, PlaceHash}
	p := &Placement{Key: fmt.Sprintf("k%d", r.Intn(5)+1), Kind: kinds[r.Intn(2)]}
	n := r.Intn(4) + 1
	lo := int64(r.Intn(100)) - 200
	for i := 0; i < n; i++ {
		part := Partition{Table: fmt.Sprintf("t__p%d", i)}
		for j := r.Intn(3) + 1; j > 0; j-- {
			part.Replicas = append(part.Replicas, fmt.Sprintf("site%d-%d", i, j))
		}
		switch p.Kind {
		case PlaceHash:
			part.Bucket = i
		case PlaceRange:
			if i > 0 {
				part.HasLo, part.Lo = true, lo
			}
			if i < n-1 {
				hi := lo + int64(r.Intn(100)) + 1
				part.HasHi, part.Hi = true, hi
				lo = hi
			}
		}
		p.Parts = append(p.Parts, part)
	}
	return p
}

// TestPlacementQuickXMLRoundTrip drives random placements through the
// XML wire/persistence encoding: decode(encode(p)) == p.
func TestPlacementQuickXMLRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		p := randomPlacement(rand.New(rand.NewSource(seed)))
		data, err := xml.Marshal(p)
		if err != nil {
			t.Logf("marshal: %v", err)
			return false
		}
		var got Placement
		if err := xml.Unmarshal(data, &got); err != nil {
			t.Logf("unmarshal: %v", err)
			return false
		}
		if !reflect.DeepEqual(&got, p) {
			t.Logf("round-trip diverged:\n in  %+v\n out %+v", p, &got)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
