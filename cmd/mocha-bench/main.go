// mocha-bench regenerates the paper's evaluation: every table and figure
// of section 5 plus the ablations documented in DESIGN.md.
//
// Usage:
//
//	mocha-bench [-scale 0.05] [-bandwidth 10e6] [-experiment all|fig9a|...]
//	mocha-bench -experiment fig9a -json [-out results/]
//	mocha-bench -list
package main

import (
	"flag"
	"fmt"
	"os"

	"mocha/internal/bench"
	"mocha/internal/netsim"
)

func main() {
	scale := flag.Float64("scale", 0.1, "dataset scale factor (1.0 = the paper's Table 1 sizes)")
	bandwidth := flag.Float64("bandwidth", 10e6, "modeled link bandwidth in bits/sec (paper: 10 Mbps); 0 disables shaping")
	experiment := flag.String("experiment", "all", "experiment id, or 'all'")
	jsonOut := flag.Bool("json", false, "also write each experiment's numbers to BENCH_<id>.json")
	outDir := flag.String("out", ".", "directory for -json output files")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	if *list {
		for _, id := range bench.AllExperiments {
			fmt.Println(id)
		}
		return
	}

	opts := bench.Options{Scale: *scale}
	if *bandwidth <= 0 {
		opts.Unshaped = true
	} else {
		opts.Shaper = &netsim.Shaper{BitsPerSec: *bandwidth, Latency: netsim.Ethernet10Mbps.Latency}
	}
	fmt.Printf("mocha-bench: scale=%.3f bandwidth=%.0fbps\n\n", *scale, *bandwidth)
	env, err := bench.NewEnv(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "setup:", err)
		os.Exit(1)
	}
	defer env.Close()

	ids := bench.AllExperiments
	if *experiment != "all" {
		ids = []string{*experiment}
	}
	for _, id := range ids {
		tables, report, err := env.RunExperimentReport(id)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			os.Exit(1)
		}
		for _, t := range tables {
			fmt.Println(t)
		}
		if *jsonOut {
			path, err := report.WriteJSON(*outDir)
			if err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n\n", path)
		}
	}
}
