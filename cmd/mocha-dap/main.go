// mocha-dap runs a Data Access Provider over a storage directory,
// serving plan fragments and shipped code from a QPC.
//
// Usage:
//
//	mocha-dap -site maryland -data /var/mocha/maryland -listen :7701
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"strings"
	"time"

	"mocha/internal/dap"
	"mocha/internal/obs"
	"mocha/internal/storage"
)

func main() {
	site := flag.String("site", "site1", "site name reported in statistics")
	data := flag.String("data", "", "storage directory (created by mocha-datagen); empty = in-memory")
	listen := flag.String("listen", ":7701", "TCP listen address")
	noCache := flag.Bool("no-code-cache", false, "disable the class cache (re-ship code every query)")
	idleTimeout := flag.Duration("idle-timeout", 5*time.Minute, "close a session idle this long between requests (0 = never)")
	frameTimeout := flag.Duration("frame-timeout", 30*time.Second, "per-frame write bound; a QPC that stops draining fails the session (0 = unbounded)")
	replayWindow := flag.Int64("replay-window-bytes", 1<<20, "per-stream replay window retained for RESUME after a dropped connection")
	retainTTL := flag.Duration("retain-ttl", 10*time.Second, "how long an interrupted resumable stream waits for a RESUME before it is aborted")
	batchBytes := flag.Int("batch-bytes", 0, "target tuple-batch payload size; smaller batches shrink RESUME retransmission (0 = 256 KiB default)")
	noResume := flag.Bool("no-resume", false, "disable stream retention and RESUME (pre-recovery ablation baseline)")
	pprofAddr := flag.String("pprof-addr", "", "serve /metrics and /debug/pprof on this address (empty = disabled)")
	quiet := flag.Bool("quiet", false, "suppress per-session logging")
	flag.Parse()

	store, err := storage.OpenStore(*data, 0)
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()
	if tables := store.TableNames(); len(tables) > 0 {
		fmt.Printf("mocha-dap %s: serving tables %s\n", *site, strings.Join(tables, ", "))
	} else {
		fmt.Printf("mocha-dap %s: empty store (use mocha-datagen)\n", *site)
	}

	logf := log.Printf
	if *quiet {
		logf = func(string, ...any) {}
	}
	srv := dap.New(dap.Config{
		Site:              *site,
		Driver:            &dap.StorageDriver{Store: store},
		DisableCodeCache:  *noCache,
		IdleTimeout:       *idleTimeout,
		FrameTimeout:      *frameTimeout,
		ReplayWindowBytes: *replayWindow,
		RetainTTL:         *retainTTL,
		BatchBytes:        *batchBytes,
		DisableResume:     *noResume,
		Logf:              logf,
	})
	obs.ServeDebug(*pprofAddr, srv.Metrics(), logf)
	l, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mocha-dap %s: listening on %s\n", *site, l.Addr())
	if err := srv.Serve(l); err != nil {
		log.Fatal(err)
	}
}
