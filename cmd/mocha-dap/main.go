// mocha-dap runs a Data Access Provider over a storage directory,
// serving plan fragments and shipped code from a QPC.
//
// Usage:
//
//	mocha-dap -site maryland -data /var/mocha/maryland -listen :7701
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"strings"
	"time"

	"mocha/internal/dap"
	"mocha/internal/obs"
	"mocha/internal/storage"
)

func main() {
	site := flag.String("site", "site1", "site name reported in statistics")
	data := flag.String("data", "", "storage directory (created by mocha-datagen); empty = in-memory")
	listen := flag.String("listen", ":7701", "TCP listen address")
	noCache := flag.Bool("no-code-cache", false, "disable the class cache (re-ship code every query)")
	idleTimeout := flag.Duration("idle-timeout", 5*time.Minute, "close a session idle this long between requests (0 = never)")
	frameTimeout := flag.Duration("frame-timeout", 30*time.Second, "per-frame write bound; a QPC that stops draining fails the session (0 = unbounded)")
	pprofAddr := flag.String("pprof-addr", "", "serve /metrics and /debug/pprof on this address (empty = disabled)")
	quiet := flag.Bool("quiet", false, "suppress per-session logging")
	flag.Parse()

	store, err := storage.OpenStore(*data, 0)
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()
	if tables := store.TableNames(); len(tables) > 0 {
		fmt.Printf("mocha-dap %s: serving tables %s\n", *site, strings.Join(tables, ", "))
	} else {
		fmt.Printf("mocha-dap %s: empty store (use mocha-datagen)\n", *site)
	}

	logf := log.Printf
	if *quiet {
		logf = func(string, ...any) {}
	}
	srv := dap.New(dap.Config{
		Site:             *site,
		Driver:           &dap.StorageDriver{Store: store},
		DisableCodeCache: *noCache,
		IdleTimeout:      *idleTimeout,
		FrameTimeout:     *frameTimeout,
		Logf:             logf,
	})
	obs.ServeDebug(*pprofAddr, srv.Metrics(), logf)
	l, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mocha-dap %s: listening on %s\n", *site, l.Addr())
	if err := srv.Serve(l); err != nil {
		log.Fatal(err)
	}
}
