// mocha-loadgen drives heavy concurrent traffic through an embedded
// MOCHA cluster: hundreds of wire-protocol clients issuing a mixed
// query workload against a governed QPC (admission control plus a
// query-memory budget that forces joins and aggregates to spill). It
// verifies every result against a sequentially computed baseline,
// checks the governor's high-water mark never exceeded the budget, and
// writes the latency/throughput/spill summary to BENCH_load.json.
//
// Usage:
//
//	mocha-loadgen -clients 200 -queries 3 -mem-budget 32768 -strategy data-ship
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"mocha/internal/bench"
	"mocha/internal/obs"
	"mocha/internal/sequoia"
	"mocha/pkg/mocha"
)

// workload is the query mix: a scan, an aggregation, a complex-operator
// projection, a distributed join with ordering and a limit, an
// aggregate over a join, and the image-heavy Q5 join (under data
// shipping its build holds whole rasters — the query that pressures
// the memory governor). Every query is deterministic for a given
// scale, so one sequential baseline validates all concurrent runs.
func workload() []string {
	return []string{
		`SELECT time, location FROM Rasters`,
		sequoia.Q1,
		`SELECT name, TotalLength(graph) FROM Graphs`,
		`SELECT R1.time AS t1, R2.time AS t2
		 FROM Rasters1 AS R1, Rasters2 AS R2
		 WHERE R1.location = R2.location ORDER BY t1, t2 LIMIT 64`,
		`SELECT R1.band AS b, Count(R2.time) AS n
		 FROM Rasters1 AS R1, Rasters2 AS R2
		 WHERE R1.location = R2.location GROUP BY R1.band ORDER BY b`,
		sequoia.Q5,
	}
}

// loadConfig parameterizes one load run.
type loadConfig struct {
	Clients       int
	Queries       int
	Scale         float64
	MemBudget     int64
	MaxConcurrent int
	QueueDepth    int
	Strategy      mocha.Strategy
	Faults        bool
	Partitions    int
	Seed          int
	Logf          func(format string, args ...any)
}

// run executes the load: sequential baseline on an ungoverned cluster,
// then Clients concurrent wire sessions against the governed one. The
// returned problems list holds every invariant violation (failed or
// incorrect queries, a governor high-water mark above its budget).
func run(cfg loadConfig) (bench.LoadStatsJSON, []string, error) {
	env, err := bench.NewEnv(bench.Options{
		Scale:            cfg.Scale,
		Unshaped:         true,
		Exec:             mocha.Tuning{MemBudgetBytes: cfg.MemBudget},
		MaxConcurrent:    cfg.MaxConcurrent,
		QueueDepth:       cfg.QueueDepth,
		RasterPartitions: cfg.Partitions,
	})
	if err != nil {
		return bench.LoadStatsJSON{}, nil, fmt.Errorf("environment: %w", err)
	}
	defer env.Close()
	env.Cluster.SetStrategy(cfg.Strategy)

	// Sequential baseline on an ungoverned, unpartitioned cluster: the
	// load run's results must match these exactly — spills, scattered
	// shard reads and all.
	base, err := bench.NewEnv(bench.Options{Scale: cfg.Scale, Unshaped: true})
	if err != nil {
		return bench.LoadStatsJSON{}, nil, fmt.Errorf("baseline environment: %w", err)
	}
	base.Cluster.SetStrategy(cfg.Strategy)
	pool := workload()
	baseline := make([][]string, len(pool))
	for i, sql := range pool {
		res, err := base.Cluster.Execute(sql)
		if err != nil {
			base.Close()
			return bench.LoadStatsJSON{}, nil, fmt.Errorf("baseline query %d: %w", i, err)
		}
		baseline[i] = canonRows(res.Rows)
	}
	base.Close()

	if cfg.Faults {
		// Every 7th connection to site2 dies at first I/O: sessions keep
		// failing on a period, so retries and stream recovery stay busy
		// for the whole run.
		env.Cluster.SetFault("site2", &mocha.FaultPlan{DropEveryNthConn: 7})
	}

	var (
		mu        sync.Mutex
		latencies []float64
		total     int64
		failed    int64
		rejected  int64
		incorrect int64
	)
	tenants := []string{"tenant-a", "tenant-b"}
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			tenant := tenants[c%len(tenants)]
			cl, err := env.Cluster.ConnectTenant(tenant)
			if err != nil {
				mu.Lock()
				failed += int64(cfg.Queries)
				total += int64(cfg.Queries)
				mu.Unlock()
				return
			}
			defer cl.Close()
			for j := 0; j < cfg.Queries; j++ {
				qi := (c + j + cfg.Seed) % len(pool)
				t0 := time.Now()
				rows, err := runQuery(cl, pool[qi])
				lat := float64(time.Since(t0).Microseconds()) / 1000
				mu.Lock()
				total++
				switch {
				case err != nil && strings.Contains(err.Error(), "admission queue full"):
					rejected++
				case err != nil:
					failed++
					cfg.Logf("mocha-loadgen: client %d query %d: %v", c, qi, err)
				default:
					latencies = append(latencies, lat)
					if !sameRows(rows, baseline[qi]) {
						incorrect++
						cfg.Logf("mocha-loadgen: client %d query %d: result mismatch (%d rows, want %d)",
							c, qi, len(rows), len(baseline[qi]))
					}
				}
				mu.Unlock()
				if err != nil {
					// The session may be mid-stream; reconnect for the
					// remaining queries.
					cl.Close()
					cl, err = env.Cluster.ConnectTenant(tenant)
					if err != nil {
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	sort.Float64s(latencies)
	snap := env.Cluster.Metrics().Snapshot()
	gov := env.Cluster.QPCGovernor()
	stats := bench.LoadStatsJSON{
		Clients:          cfg.Clients,
		Tenants:          len(tenants),
		QueriesTotal:     total,
		QueriesFailed:    failed,
		Rejected:         rejected,
		IncorrectResults: incorrect,
		ElapsedMS:        float64(elapsed.Microseconds()) / 1000,
		P50MS:            percentile(latencies, 0.50),
		P95MS:            percentile(latencies, 0.95),
		P99MS:            percentile(latencies, 0.99),
		SpillEvents:      snap[obs.MExecSpillEvents],
		SpillBytes:       snap[obs.MExecSpillBytes],
		MemBudgetBytes:   cfg.MemBudget,
	}
	if len(latencies) > 0 {
		stats.MaxMS = latencies[len(latencies)-1]
	}
	if elapsed > 0 {
		stats.ThroughputQPS = float64(total-failed-rejected) / elapsed.Seconds()
	}
	if gov != nil {
		stats.MemHighWater = gov.HighWater()
	}

	var problems []string
	if incorrect > 0 {
		problems = append(problems, fmt.Sprintf("%d incorrect results", incorrect))
	}
	if failed > 0 {
		problems = append(problems, fmt.Sprintf("%d failed queries", failed))
	}
	if gov != nil && gov.HighWater() > gov.Budget() {
		problems = append(problems, fmt.Sprintf("QPC granted high water %d B exceeds budget %d B",
			gov.HighWater(), gov.Budget()))
	}
	for _, site := range []string{"site1", "site2", "site3"} {
		dg, err := env.Cluster.DAPGovernor(site)
		if err != nil || dg == nil {
			continue
		}
		if dg.HighWater() > dg.Budget() {
			problems = append(problems, fmt.Sprintf("%s granted high water %d B exceeds budget %d B",
				site, dg.HighWater(), dg.Budget()))
		}
	}
	return stats, problems, nil
}

func main() {
	clients := flag.Int("clients", 200, "concurrent wire-protocol clients")
	queries := flag.Int("queries", 3, "queries issued by each client")
	scale := flag.Float64("scale", 0.05, "Sequoia dataset scale")
	memBudget := flag.Int64("mem-budget", 8<<20, "query-memory budget in bytes on the QPC and each DAP (0 = ungoverned)")
	maxConcurrent := flag.Int("max-concurrent", 16, "admission slots on the QPC (0 = unbounded)")
	queueDepth := flag.Int("queue-depth", 4096, "admission queue depth (0 = reject when saturated)")
	strategy := flag.String("strategy", "auto", "operator placement: auto, code-ship or data-ship (data-ship maximizes QPC memory pressure)")
	faults := flag.Bool("faults", false, "inject recurring connection drops on site2's link")
	partitions := flag.Int("partitions", 0, "range-partition Rasters into N replicated shards across the sites (0 = single table)")
	seed := flag.Int("seed", 1, "rotates which query each client starts with")
	out := flag.String("out", "", "directory for BENCH_load.json (default: working directory)")
	flag.Parse()

	var strat mocha.Strategy
	switch *strategy {
	case "auto":
		strat = mocha.StrategyAuto
	case "code-ship":
		strat = mocha.StrategyCodeShip
	case "data-ship":
		strat = mocha.StrategyDataShip
	default:
		log.Fatalf("mocha-loadgen: unknown strategy %q", *strategy)
	}

	stats, problems, err := run(loadConfig{
		Clients:       *clients,
		Queries:       *queries,
		Scale:         *scale,
		MemBudget:     *memBudget,
		MaxConcurrent: *maxConcurrent,
		QueueDepth:    *queueDepth,
		Strategy:      strat,
		Faults:        *faults,
		Partitions:    *partitions,
		Seed:          *seed,
		Logf:          log.Printf,
	})
	if err != nil {
		log.Fatalf("mocha-loadgen: %v", err)
	}

	fmt.Printf("mocha-loadgen: %d clients x %d queries in %.1fs: %.1f q/s, p50 %.1fms p95 %.1fms p99 %.1fms max %.1fms\n",
		*clients, *queries, stats.ElapsedMS/1000, stats.ThroughputQPS,
		stats.P50MS, stats.P95MS, stats.P99MS, stats.MaxMS)
	fmt.Printf("mocha-loadgen: %d ok, %d failed, %d rejected, %d incorrect; %d spill events / %d B spilled; high water %d / %d B budget\n",
		stats.QueriesTotal-stats.QueriesFailed-stats.Rejected, stats.QueriesFailed,
		stats.Rejected, stats.IncorrectResults,
		stats.SpillEvents, stats.SpillBytes, stats.MemHighWater, stats.MemBudgetBytes)

	rep := &bench.Report{Experiment: "load", Scale: *scale, Load: &stats}
	path, err := rep.WriteJSON(*out)
	if err != nil {
		log.Fatalf("mocha-loadgen: write report: %v", err)
	}
	fmt.Printf("mocha-loadgen: wrote %s\n", path)

	for _, p := range problems {
		fmt.Fprintf(os.Stderr, "mocha-loadgen: FAIL: %s\n", p)
	}
	if len(problems) > 0 {
		os.Exit(1)
	}
}

// runQuery executes one query over the wire and drains its rows.
func runQuery(cl *mocha.Client, sql string) ([]string, error) {
	rows, err := cl.Query(sql)
	if err != nil {
		return nil, err
	}
	tups, err := rows.All()
	if err != nil {
		return nil, err
	}
	return canonRows(tups), nil
}

// canonRows renders tuples to a sorted multiset of row strings, the
// order-insensitive form the baseline comparison uses.
func canonRows(rows []mocha.Tuple) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = fmt.Sprintf("%v", r)
	}
	sort.Strings(out)
	return out
}

// sameRows compares two canonical row multisets.
func sameRows(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// percentile returns the q-th percentile of sorted values (nearest-rank).
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
