package main

import (
	"testing"

	"mocha/pkg/mocha"
)

// TestRunSmallLoad drives a miniature version of the CI load smoke:
// governed data-ship placement under a budget small enough to spill,
// with recurring connection drops on one site. Every query must match
// the sequential baseline and the governor must stay under budget.
func TestRunSmallLoad(t *testing.T) {
	stats, problems, err := run(loadConfig{
		Clients:       12,
		Queries:       2,
		Scale:         0.02,
		MemBudget:     16 << 10,
		MaxConcurrent: 4,
		QueueDepth:    256,
		Strategy:      mocha.StrategyDataShip,
		Faults:        true,
		Seed:          1,
		Logf:          t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range problems {
		t.Errorf("invariant violated: %s", p)
	}
	if stats.QueriesTotal != 24 {
		t.Errorf("total = %d, want 24", stats.QueriesTotal)
	}
	if stats.SpillEvents == 0 {
		t.Error("no spill events under a 16 KiB data-ship budget")
	}
	if stats.MemHighWater == 0 || stats.MemHighWater > stats.MemBudgetBytes {
		t.Errorf("high water %d B outside (0, budget %d B]", stats.MemHighWater, stats.MemBudgetBytes)
	}
	if stats.P50MS <= 0 || stats.P99MS < stats.P50MS || stats.MaxMS < stats.P99MS {
		t.Errorf("percentiles inconsistent: p50 %.1f p99 %.1f max %.1f", stats.P50MS, stats.P99MS, stats.MaxMS)
	}
}

// TestPercentileNearestRank pins the nearest-rank convention.
func TestPercentileNearestRank(t *testing.T) {
	if got := percentile(nil, 0.5); got != 0 {
		t.Errorf("empty percentile = %v", got)
	}
	vals := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	for _, tc := range []struct {
		q    float64
		want float64
	}{{0.50, 5}, {0.90, 9}, {0.95, 10}, {0.99, 10}, {0.01, 1}} {
		if got := percentile(vals, tc.q); got != tc.want {
			t.Errorf("percentile(%.2f) = %v, want %v", tc.q, got, tc.want)
		}
	}
}

// TestSameRows covers the multiset comparison used against baselines.
func TestSameRows(t *testing.T) {
	if !sameRows([]string{"a", "b"}, []string{"a", "b"}) {
		t.Error("equal slices reported different")
	}
	if sameRows([]string{"a"}, []string{"a", "b"}) {
		t.Error("length mismatch reported equal")
	}
	if sameRows([]string{"a", "c"}, []string{"a", "b"}) {
		t.Error("content mismatch reported equal")
	}
}
