// mocha-lint runs the repository's custom static checks (see
// internal/analysis): the metric-inventory and operator-span-inventory
// checks against internal/obs/names.go, the wire frame-name table
// check, and the MVM cost-table inventory check against
// internal/vm/cost.go. CI runs it on every push; a non-empty finding
// list fails the build.
//
// Usage:
//
//	mocha-lint [repo-root]
package main

import (
	"fmt"
	"os"

	"mocha/internal/analysis"
)

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	findings, err := analysis.Run(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mocha-lint:", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "mocha-lint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}
