// mocha-qpc runs the Query Processing Coordinator: it loads the catalog
// (sites, tables, statistics), serves SQL clients, and deploys plan
// fragments and operator code to the catalog's DAPs over TCP.
//
// Usage:
//
//	mocha-qpc -catalog catalog.xml -listen :7700 [-strategy auto]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"time"

	"mocha/internal/catalog"
	"mocha/internal/core"
	"mocha/internal/exec"
	"mocha/internal/netsim"
	"mocha/internal/obs"
	"mocha/internal/ops"
	"mocha/internal/qpc"
)

func main() {
	catalogPath := flag.String("catalog", "catalog.xml", "catalog XML file (see mocha-datagen -catalog)")
	listen := flag.String("listen", ":7700", "TCP listen address for clients")
	strategy := flag.String("strategy", "auto", "operator placement: auto, code-ship or data-ship")
	bandwidth := flag.Float64("bandwidth", 0, "model DAP links at this bandwidth in bits/sec (0 = unshaped)")
	queryTimeout := flag.Duration("query-timeout", 0, "abort a query after this long (0 = unbounded)")
	frameTimeout := flag.Duration("frame-timeout", 30*time.Second, "per-frame DAP I/O bound; a stalled site fails instead of hanging (0 = unbounded)")
	retryAttempts := flag.Int("retry-attempts", 4, "attempts per idempotent DAP operation (1 = no retries)")
	retryBase := flag.Duration("retry-base-delay", 50*time.Millisecond, "first retry backoff delay (doubles per attempt, jittered)")
	retryBudget := flag.Int("retry-budget", 8, "total retries allowed across one query")
	breakerThreshold := flag.Int("breaker-threshold", 3, "consecutive transient failures that trip a site's circuit breaker open")
	breakerOpenFor := flag.Duration("breaker-open-for", 3*time.Second, "how long an open breaker fails fast before allowing a half-open probe")
	noBreaker := flag.Bool("no-breaker", false, "disable per-site circuit breaking and degraded planning")
	noResume := flag.Bool("no-resume", false, "disable mid-stream RESUME recovery (pre-recovery ablation baseline)")
	heartbeat := flag.Duration("heartbeat-interval", 0, "probe every catalog site this often to demote dead replicas ahead of queries (0 = disabled)")
	memBudget := flag.Int64("mem-budget", 0, "query-memory budget in bytes shared by all queries; joins and aggregates spill past it (0 = ungoverned)")
	classesDir := flag.String("classes-dir", "", "load operator releases from this directory (manifest.xml + .mvmc blobs; re-verified on load)")
	rolloutMinSamples := flag.Int("rollout-min-samples", 0, "canary/active comparisons before the latency check may abort a rollout (0 = default)")
	rolloutLatencyFactor := flag.Float64("rollout-latency-factor", 0, "abort a rollout when canary op self-time exceeds this multiple of active (0 = default)")
	rolloutPromoteAfter := flag.Int("rollout-promote-after", 0, "clean comparisons that auto-promote a canary (-1 = never, 0 = default)")
	rolloutMaxErrors := flag.Int("rollout-max-canary-errors", 0, "canary-only failures tolerated before auto-rollback")
	maxConcurrent := flag.Int("max-concurrent", 0, "queries admitted to execute at once (0 = unbounded)")
	queueDepth := flag.Int("queue-depth", 0, "queries allowed to wait for an admission slot, drained round-robin per tenant (0 = reject when saturated)")
	pprofAddr := flag.String("pprof-addr", "", "serve /metrics and /debug/pprof on this address (empty = disabled)")
	quiet := flag.Bool("quiet", false, "suppress per-query logging")
	flag.Parse()

	var strat core.Strategy
	switch *strategy {
	case "auto":
		strat = core.StrategyAuto
	case "code-ship":
		strat = core.StrategyCodeShip
	case "data-ship":
		strat = core.StrategyDataShip
	default:
		log.Fatalf("unknown strategy %q", *strategy)
	}

	reg := ops.Builtins()
	cat := catalog.New(reg, catalog.NewRepositoryFromRegistry(reg))
	if err := cat.Load(*catalogPath); err != nil {
		log.Fatalf("load catalog: %v", err)
	}
	if *classesDir != "" {
		if err := cat.Repo().LoadDir(*classesDir); err != nil {
			log.Fatalf("load classes: %v", err)
		}
	}
	fmt.Printf("mocha-qpc: %d tables, %d operators, strategy=%v\n",
		len(cat.TableNames()), len(reg.Names()), strat)

	logf := log.Printf
	if *quiet {
		logf = func(string, ...any) {}
	}
	var shaper *netsim.Shaper
	if *bandwidth > 0 {
		shaper = &netsim.Shaper{BitsPerSec: *bandwidth}
	}
	var dialer net.Dialer
	srv := qpc.New(qpc.Config{
		Cat: cat,
		DialContext: func(ctx context.Context, addr string) (net.Conn, error) {
			nc, err := dialer.DialContext(ctx, "tcp", addr)
			if err != nil {
				return nil, err
			}
			return netsim.Shape(nc, shaper), nil
		},
		Strategy:     strat,
		QueryTimeout: *queryTimeout,
		FrameTimeout: *frameTimeout,
		Retry: qpc.RetryPolicy{
			MaxAttempts: *retryAttempts,
			BaseDelay:   *retryBase,
			Budget:      *retryBudget,
		},
		Breaker: qpc.BreakerPolicy{
			FailureThreshold: *breakerThreshold,
			OpenFor:          *breakerOpenFor,
			Disabled:         *noBreaker,
		},
		DisableResume:     *noResume,
		HeartbeatInterval: *heartbeat,
		Rollout: qpc.RolloutPolicy{
			MinSamples:      *rolloutMinSamples,
			LatencyFactor:   *rolloutLatencyFactor,
			PromoteAfter:    *rolloutPromoteAfter,
			MaxCanaryErrors: *rolloutMaxErrors,
		},
		Exec:          exec.Tuning{MemBudgetBytes: *memBudget},
		MaxConcurrent: *maxConcurrent,
		QueueDepth:    *queueDepth,
		Logf:          logf,
	})
	obs.ServeDebug(*pprofAddr, srv.Metrics(), logf)
	l, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mocha-qpc: listening on %s\n", l.Addr())
	if err := srv.Serve(l); err != nil {
		log.Fatal(err)
	}
}
