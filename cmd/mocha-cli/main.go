// mocha-cli is the interactive SQL client for a running QPC (the
// stand-alone application client of section 3.1).
//
// Usage:
//
//	mocha-cli -qpc localhost:7700 -e "SELECT time FROM Rasters LIMIT 5"
//	mocha-cli -qpc localhost:7700 -verify Perimeter   # audit a class
//	mocha-cli -qpc localhost:7700 releases list       # release history, all classes
//	mocha-cli -qpc localhost:7700 releases show Clip  # one class: tag, digest, caps, markers
//	mocha-cli -qpc localhost:7700 rollouts            # rollout history with abort evidence
//	mocha-cli -qpc localhost:7700 verify Perimeter    # same audit as -verify, verb form
//	mocha-cli -qpc localhost:7700            # REPL on stdin
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"mocha/pkg/mocha"
)

func main() {
	addr := flag.String("qpc", "localhost:7700", "QPC address")
	exec := flag.String("e", "", "execute one statement and exit")
	verify := flag.String("verify", "", "run the static verifier on a repository class and print the audit report")
	showStats := flag.Bool("stats", true, "print execution statistics after each query")
	flag.Parse()

	client, err := mocha.Dial(*addr)
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	if *verify != "" {
		if err := runQuery(client, "VERIFY "+*verify, false); err != nil {
			log.Fatal(err)
		}
		return
	}

	// Positional release verbs map onto the QPC's SHOW statements.
	if args := flag.Args(); len(args) > 0 {
		sql, err := releaseVerb(args)
		if err != nil {
			log.Fatal(err)
		}
		if err := runQuery(client, sql, false); err != nil {
			log.Fatal(err)
		}
		return
	}

	if *exec != "" {
		if err := runQuery(client, *exec, *showStats); err != nil {
			log.Fatal(err)
		}
		return
	}

	fmt.Println("mocha-cli: connected to", *addr, "(end statements with ';', \\q to quit)")
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	fmt.Print("mocha> ")
	for scanner.Scan() {
		line := scanner.Text()
		trimmed := strings.TrimSpace(line)
		if trimmed == `\q` || trimmed == "quit" || trimmed == "exit" {
			return
		}
		buf.WriteString(line)
		buf.WriteByte('\n')
		if strings.HasSuffix(trimmed, ";") {
			sql := strings.TrimSuffix(strings.TrimSpace(buf.String()), ";")
			buf.Reset()
			if sql != "" {
				if err := runQuery(client, sql, *showStats); err != nil {
					fmt.Println("error:", err)
				}
			}
			fmt.Print("mocha> ")
			continue
		}
		fmt.Print("    -> ")
	}
}

// releaseVerb translates the positional release/rollout verbs to SQL.
func releaseVerb(args []string) (string, error) {
	switch args[0] {
	case "releases":
		if len(args) == 2 && args[1] == "list" {
			return "SHOW RELEASES", nil
		}
		if len(args) == 3 && args[1] == "show" {
			return "SHOW RELEASES " + args[2], nil
		}
		return "", fmt.Errorf("usage: mocha-cli releases list | releases show <class>")
	case "rollouts":
		if len(args) == 1 {
			return "SHOW ROLLOUTS", nil
		}
		return "", fmt.Errorf("usage: mocha-cli rollouts")
	case "verify":
		if len(args) == 2 {
			return "VERIFY " + args[1], nil
		}
		return "", fmt.Errorf("usage: mocha-cli verify <class>")
	}
	return "", fmt.Errorf("unknown command %q (want releases, rollouts or verify)", args[0])
}

func runQuery(client *mocha.Client, sql string, showStats bool) error {
	rows, err := client.Query(sql)
	if err != nil {
		return err
	}
	header := make([]string, rows.Schema.Arity())
	for i, c := range rows.Schema.Columns {
		header[i] = c.Name
	}
	fmt.Println(strings.Join(header, " | "))
	var n int
	for {
		row, err := rows.Next()
		if err != nil {
			return err
		}
		if row == nil {
			break
		}
		cells := make([]string, len(row))
		for i, v := range row {
			cells[i] = v.String()
		}
		fmt.Println(strings.Join(cells, " | "))
		n++
	}
	fmt.Printf("(%d rows)\n", n)
	if showStats {
		if s, err := rows.Stats(); err == nil {
			fmt.Printf("time %.1fms (db %.1f cpu %.1f net %.1f misc %.1f) | moved %d bytes | CVRF %.6f | shipped %d classes\n",
				s.TotalMS, s.DBMS, s.CPUMS, s.NetMS, s.MiscMS, s.CVDT, s.CVRF(), s.CodeClassesShipped)
		}
	}
	return nil
}
