package main

import "testing"

func TestReleaseVerb(t *testing.T) {
	good := map[string][]string{
		"SHOW RELEASES":           {"releases", "list"},
		"SHOW RELEASES AvgEnergy": {"releases", "show", "AvgEnergy"},
		"SHOW ROLLOUTS":           {"rollouts"},
		"VERIFY Perimeter":        {"verify", "Perimeter"},
	}
	for want, args := range good {
		got, err := releaseVerb(args)
		if err != nil || got != want {
			t.Errorf("releaseVerb(%v) = %q, %v; want %q", args, got, err, want)
		}
	}
	bad := [][]string{
		{"releases"},
		{"releases", "show"},
		{"releases", "drop", "AvgEnergy"},
		{"rollouts", "extra"},
		{"verify"},
		{"verify", "Perimeter", "extra"},
		{"frobnicate"},
	}
	for _, args := range bad {
		if _, err := releaseVerb(args); err == nil {
			t.Errorf("releaseVerb(%v) accepted", args)
		}
	}
}
