package main

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"mocha/internal/catalog"
	"mocha/internal/ops"
)

// TestMainPartitionedCatalogRoundTrip runs the generator end to end
// with partitioning enabled and reloads the catalog it wrote: the
// placement (shard tables, replica sets, range bounds) must survive
// the XML round trip, because the standalone QPC plans scatter/gather
// from exactly this file.
func TestMainPartitionedCatalogRoundTrip(t *testing.T) {
	dir := t.TempDir()
	oldArgs := os.Args
	defer func() { os.Args = oldArgs }()
	os.Args = []string{"mocha-datagen", "-out", dir, "-scale", "0.02",
		"-partitions", "3", "-replicas", "2"}
	flag.CommandLine = flag.NewFlagSet(os.Args[0], flag.ExitOnError)
	main()

	reg := ops.Builtins()
	cat := catalog.New(reg, catalog.NewRepositoryFromRegistry(reg))
	if err := cat.Load(filepath.Join(dir, "catalog.xml")); err != nil {
		t.Fatal(err)
	}
	def, ok := cat.Table("Rasters")
	if !ok {
		t.Fatal("reloaded catalog lost the Rasters table")
	}
	if def.Placement == nil {
		t.Fatal("reloaded catalog lost the placement")
	}
	if len(def.Placement.Parts) != 3 {
		t.Fatalf("placement has %d shards, want 3", len(def.Placement.Parts))
	}
	if def.Placement.Key != "time" || def.Placement.Kind != catalog.PlaceRange {
		t.Fatalf("placement = kind %v on %q, want range on time", def.Placement.Kind, def.Placement.Key)
	}
	var rows int64
	for i, part := range def.Placement.Parts {
		if len(part.Replicas) != 2 {
			t.Errorf("shard %d has %d replicas, want 2", i, len(part.Replicas))
		}
		if part.Table == "" {
			t.Errorf("shard %d has no physical table", i)
		}
	}
	if rows = def.Stats.RowCount; rows == 0 {
		t.Error("partitioned table registered with zero rows")
	}
	// Interior shards carry both bounds; the ends stay half-open.
	if def.Placement.Parts[0].HasLo || !def.Placement.Parts[2].HasLo {
		t.Error("range bounds did not survive the round trip")
	}
	// The shard tables were materialized in the site stores on disk.
	for _, site := range []string{"site1", "site2"} {
		if _, err := os.Stat(filepath.Join(dir, site)); err != nil {
			t.Errorf("missing %s store: %v", site, err)
		}
	}
}
