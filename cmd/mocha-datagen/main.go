// mocha-datagen generates the Sequoia 2000 benchmark datasets into
// on-disk stores for two data sites and writes the matching QPC catalog.
//
// Usage:
//
//	mocha-datagen -out /var/mocha -scale 0.1 \
//	    -site1 localhost:7701 -site2 localhost:7702
//
// Then:
//
//	mocha-dap -site site1 -data /var/mocha/site1 -listen :7701
//	mocha-dap -site site2 -data /var/mocha/site2 -listen :7702
//	mocha-qpc -catalog /var/mocha/catalog.xml
package main

import (
	"flag"
	"fmt"
	"log"
	"path/filepath"

	"mocha/internal/catalog"
	"mocha/internal/ops"
	"mocha/internal/sequoia"
	"mocha/internal/storage"
	"mocha/pkg/mocha"
)

func main() {
	out := flag.String("out", "mocha-data", "output directory")
	scale := flag.Float64("scale", 0.1, "dataset scale (1.0 = the paper's Table 1 sizes; 200+ MB)")
	site1 := flag.String("site1", "localhost:7701", "DAP address for site1 in the catalog")
	site2 := flag.String("site2", "localhost:7702", "DAP address for site2 in the catalog")
	seed := flag.Int64("seed", 42, "generator seed")
	flag.Parse()

	cfg := sequoia.Scaled(*scale)
	cfg.Seed = *seed

	s1, err := storage.OpenStore(filepath.Join(*out, "site1"), 0)
	if err != nil {
		log.Fatal(err)
	}
	s2, err := storage.OpenStore(filepath.Join(*out, "site2"), 0)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("generating at scale %.3f (Polygons %d, Graphs %d, Rasters %d×%dpx)...\n",
		*scale, cfg.PolygonRows, cfg.GraphRows, cfg.RasterRows, cfg.RasterDim)
	if err := sequoia.GenerateAll(s1, cfg); err != nil {
		log.Fatal(err)
	}
	if err := sequoia.GenerateJoinPair(s1, s2, cfg); err != nil {
		log.Fatal(err)
	}

	reg := ops.Builtins()
	cat := catalog.New(reg, catalog.NewRepositoryFromRegistry(reg))
	cat.AddSite(&catalog.Site{Name: "site1", Addr: *site1})
	cat.AddSite(&catalog.Site{Name: "site2", Addr: *site2})
	register := func(store *storage.Store, site, table string) {
		tbl, ok := store.Table(table)
		if !ok {
			log.Fatalf("missing table %s", table)
		}
		stats, err := mocha.ComputeTableStats(tbl)
		if err != nil {
			log.Fatal(err)
		}
		if err := cat.AddTable(&catalog.TableDef{
			Name: table, URI: "mocha://" + site + "/" + table,
			Site: site, Schema: tbl.Schema(), Stats: stats,
		}); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-10s %8d rows, %5d avg bytes/row  @ %s\n",
			table, stats.RowCount, stats.AvgTupleBytes(), site)
	}
	for _, tbl := range []string{"Polygons", "Graphs", "Rasters", "Rasters1"} {
		register(s1, "site1", tbl)
	}
	register(s2, "site2", "Rasters2")

	if err := s1.Close(); err != nil {
		log.Fatal(err)
	}
	if err := s2.Close(); err != nil {
		log.Fatal(err)
	}
	catPath := filepath.Join(*out, "catalog.xml")
	if err := cat.Save(catPath); err != nil {
		log.Fatal(err)
	}
	fmt.Println("catalog written to", catPath)
}
