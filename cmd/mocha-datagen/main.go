// mocha-datagen generates the Sequoia 2000 benchmark datasets into
// on-disk stores for two data sites and writes the matching QPC catalog.
//
// Usage:
//
//	mocha-datagen -out /var/mocha -scale 0.1 \
//	    -site1 localhost:7701 -site2 localhost:7702
//
// Then:
//
//	mocha-dap -site site1 -data /var/mocha/site1 -listen :7701
//	mocha-dap -site site2 -data /var/mocha/site2 -listen :7702
//	mocha-qpc -catalog /var/mocha/catalog.xml
package main

import (
	"flag"
	"fmt"
	"log"
	"path/filepath"

	"mocha/internal/catalog"
	"mocha/internal/ops"
	"mocha/internal/sequoia"
	"mocha/internal/storage"
	"mocha/pkg/mocha"
)

func main() {
	out := flag.String("out", "mocha-data", "output directory")
	scale := flag.Float64("scale", 0.1, "dataset scale (1.0 = the paper's Table 1 sizes; 200+ MB)")
	site1 := flag.String("site1", "localhost:7701", "DAP address for site1 in the catalog")
	site2 := flag.String("site2", "localhost:7702", "DAP address for site2 in the catalog")
	seed := flag.Int64("seed", 42, "generator seed")
	partitions := flag.Int("partitions", 1, "range-partition Rasters on time into N shards across the sites (1 = single table)")
	replicas := flag.Int("replicas", 1, "replica sites per Rasters shard (capped at the site count)")
	flag.Parse()

	cfg := sequoia.Scaled(*scale)
	cfg.Seed = *seed

	s1, err := storage.OpenStore(filepath.Join(*out, "site1"), 0)
	if err != nil {
		log.Fatal(err)
	}
	s2, err := storage.OpenStore(filepath.Join(*out, "site2"), 0)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("generating at scale %.3f (Polygons %d, Graphs %d, Rasters %d×%dpx)...\n",
		*scale, cfg.PolygonRows, cfg.GraphRows, cfg.RasterRows, cfg.RasterDim)
	if err := sequoia.GenerateAll(s1, cfg); err != nil {
		log.Fatal(err)
	}
	if err := sequoia.GenerateJoinPair(s1, s2, cfg); err != nil {
		log.Fatal(err)
	}

	stores := map[string]*storage.Store{"site1": s1, "site2": s2}
	var spec *mocha.PartitionSpec
	if *partitions > 1 {
		src, ok := s1.Table("Rasters")
		if !ok {
			log.Fatal("missing table Rasters")
		}
		spec, err = shardRasters(src, stores, *partitions, *replicas)
		if err != nil {
			log.Fatal(err)
		}
	}

	reg := ops.Builtins()
	cat := catalog.New(reg, catalog.NewRepositoryFromRegistry(reg))
	cat.AddSite(&catalog.Site{Name: "site1", Addr: *site1})
	cat.AddSite(&catalog.Site{Name: "site2", Addr: *site2})
	register := func(store *storage.Store, site, table string) {
		tbl, ok := store.Table(table)
		if !ok {
			log.Fatalf("missing table %s", table)
		}
		stats, err := mocha.ComputeTableStats(tbl)
		if err != nil {
			log.Fatal(err)
		}
		if err := cat.AddTable(&catalog.TableDef{
			Name: table, URI: "mocha://" + site + "/" + table,
			Site: site, Schema: tbl.Schema(), Stats: stats,
		}); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-10s %8d rows, %5d avg bytes/row  @ %s\n",
			table, stats.RowCount, stats.AvgTupleBytes(), site)
	}
	for _, tbl := range []string{"Polygons", "Graphs", "Rasters", "Rasters1"} {
		if tbl == "Rasters" && spec != nil {
			continue
		}
		register(s1, "site1", tbl)
	}
	register(s2, "site2", "Rasters2")
	if spec != nil {
		if err := registerPartitioned(cat, stores, "Rasters", spec); err != nil {
			log.Fatal(err)
		}
	}

	if err := s1.Close(); err != nil {
		log.Fatal(err)
	}
	if err := s2.Close(); err != nil {
		log.Fatal(err)
	}
	catPath := filepath.Join(*out, "catalog.xml")
	if err := cat.Save(catPath); err != nil {
		log.Fatal(err)
	}
	fmt.Println("catalog written to", catPath)
}

// shardRasters range-partitions the generated Rasters table on time into
// n shards with k-way replication, assigning each shard's replica set
// round-robin over the sites so primaries alternate.
func shardRasters(src *storage.Table, stores map[string]*storage.Store, n, k int) (*mocha.PartitionSpec, error) {
	sites := []string{"site1", "site2"}
	if k < 1 {
		k = 1
	}
	if k > len(sites) {
		k = len(sites)
	}
	ti := src.Schema().ColumnIndex("time")
	if ti < 0 {
		return nil, fmt.Errorf("Rasters has no time column")
	}
	it, err := src.Scan()
	if err != nil {
		return nil, err
	}
	var lo, hi int64
	first := true
	for {
		tup, _, err := it.Next()
		if err != nil {
			return nil, err
		}
		if tup == nil {
			break
		}
		v := int64(tup[ti].(mocha.Int))
		if first || v < lo {
			lo = v
		}
		if first || v > hi {
			hi = v
		}
		first = false
	}
	cuts := make([]int64, 0, n-1)
	for i := 1; i < n; i++ {
		cuts = append(cuts, lo+(hi-lo+1)*int64(i)/int64(n))
	}
	sets := make([][]string, n)
	for i := range sets {
		for j := 0; j < k; j++ {
			sets[i] = append(sets[i], sites[(i+j)%len(sites)])
		}
	}
	spec := mocha.RangePlacement("Rasters", "time", cuts, sets)
	if err := mocha.SplitTable(src, spec, stores, nil, ""); err != nil {
		return nil, err
	}
	return spec, nil
}

// registerPartitioned catalogs a sharded logical table: schema from the
// first shard's primary, statistics summed over every shard once, and
// the placement recorded so the QPC plans scatter/gather over it.
func registerPartitioned(cat *catalog.Catalog, stores map[string]*storage.Store, name string, spec *mocha.PartitionSpec) error {
	var schema mocha.Schema
	total := catalog.TableStats{}
	sums := map[string]int64{}
	for pi, part := range spec.Parts {
		tbl, ok := stores[part.Replicas[0]].Table(part.Table)
		if !ok {
			return fmt.Errorf("missing shard table %s", part.Table)
		}
		if pi == 0 {
			schema = tbl.Schema()
		}
		stats, err := mocha.ComputeTableStats(tbl)
		if err != nil {
			return err
		}
		total.RowCount += stats.RowCount
		for _, c := range stats.Columns {
			sums[c.Name] += int64(c.AvgBytes) * stats.RowCount
		}
		fmt.Printf("  %-10s %8d rows  @ %v\n", part.Table, stats.RowCount, part.Replicas)
	}
	for _, c := range schema.Columns {
		avg := 0
		if total.RowCount > 0 {
			avg = int(sums[c.Name] / total.RowCount)
		}
		total.Columns = append(total.Columns, catalog.ColumnStats{Name: c.Name, AvgBytes: avg})
	}
	if err := cat.AddTable(&catalog.TableDef{
		Name: name, URI: "mocha://partitioned/" + name,
		Site: spec.Parts[0].Replicas[0], Schema: schema,
		Stats: total, Placement: spec.Clone(),
	}); err != nil {
		return err
	}
	fmt.Printf("  %-10s %8d rows, %5d avg bytes/row  (%d shards)\n",
		name, total.RowCount, total.AvgTupleBytes(), len(spec.Parts))
	return nil
}
