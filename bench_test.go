// Package mochabench holds the testing.B benchmarks that regenerate the
// paper's evaluation, one benchmark per table and figure (section 5).
// They run over an unshaped in-memory network at a small data scale so
// iterations measure the middleware itself; each reports the volume
// metrics (cvda/cvdt bytes, cvrf) whose *ratios* are the paper's
// results. cmd/mocha-bench runs the same experiments over a shaped
// 10 Mbps link and prints paper-style tables.
package mochabench

import (
	"fmt"
	"sync"
	"testing"

	"mocha/internal/bench"
	"mocha/internal/ops"
	"mocha/internal/sequoia"
	"mocha/internal/storage"
	"mocha/internal/types"
	"mocha/internal/vm"
	"mocha/pkg/mocha"
)

var (
	envOnce sync.Once
	envVal  *bench.Env
	envErr  error
)

// benchScale keeps iterations fast while preserving the evaluation's
// volume ratios (raster dimensions scale as √f).
const benchScale = 0.02

func benchEnv(b *testing.B) *bench.Env {
	b.Helper()
	envOnce.Do(func() {
		envVal, envErr = bench.NewEnv(bench.Options{Scale: benchScale, Unshaped: true})
	})
	if envErr != nil {
		b.Fatal(envErr)
	}
	return envVal
}

// runQuery benchmarks one query under one strategy, reporting volumes.
func runQuery(b *testing.B, sql string, strat mocha.Strategy) {
	b.Helper()
	env := benchEnv(b)
	var last bench.Measurement
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := env.Run(sql, strat)
		if err != nil {
			b.Fatal(err)
		}
		last = m
	}
	b.StopTimer()
	b.ReportMetric(float64(last.Stats.CVDA), "cvda_bytes")
	b.ReportMetric(float64(last.Stats.CVDT), "cvdt_bytes")
	b.ReportMetric(last.Stats.CVRF(), "cvrf")
	b.ReportMetric(float64(last.Rows), "rows")
}

var strategies = []struct {
	name string
	s    mocha.Strategy
}{
	{"CodeShip", mocha.StrategyCodeShip},
	{"DataShip", mocha.StrategyDataShip},
}

// BenchmarkTable1Datasets measures Sequoia dataset generation (the
// substrate behind Table 1).
func BenchmarkTable1Datasets(b *testing.B) {
	cfg := sequoia.Scaled(benchScale)
	for i := 0; i < b.N; i++ {
		store, err := storage.OpenStore("", 0)
		if err != nil {
			b.Fatal(err)
		}
		if err := sequoia.GenerateAll(store, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2Queries measures parse+bind+optimize for every
// benchmark query (Table 2).
func BenchmarkTable2Queries(b *testing.B) {
	env := benchEnv(b)
	queries := []string{
		sequoia.Q1, sequoia.Q2(env.Cfg), sequoia.Q3,
		sequoia.Q4(10, 1e9), sequoia.Q5,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, q := range queries {
			if _, err := env.Cluster.Explain(q); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFig9a: Q1/Q2/Q3 execution time under both strategies.
func BenchmarkFig9a(b *testing.B) {
	env := benchEnv(b)
	queries := []struct {
		name string
		sql  string
	}{
		{"Q1_Aggregates", sequoia.Q1},
		{"Q2_Clip", sequoia.Q2(env.Cfg)},
		{"Q3_IncrRes", sequoia.Q3},
	}
	for _, q := range queries {
		for _, st := range strategies {
			b.Run(q.name+"/"+st.name, func(b *testing.B) {
				runQuery(b, q.sql, st.s)
			})
		}
	}
}

// BenchmarkFig9b: the volume comparison for the same queries (the
// cvdt_bytes/cvrf metrics are the figure's y-axis).
func BenchmarkFig9b(b *testing.B) {
	env := benchEnv(b)
	for _, st := range strategies {
		b.Run("Q2_Clip/"+st.name, func(b *testing.B) {
			runQuery(b, sequoia.Q2(env.Cfg), st.s)
		})
	}
}

// BenchmarkFig10a: Q4 across predicate selectivities.
func BenchmarkFig10a(b *testing.B) {
	env := benchEnv(b)
	cals, err := sequoia.CalibrateQ4(envStore(b, env), bench.DefaultQ4Selectivities)
	if err != nil {
		b.Fatal(err)
	}
	for _, cal := range cals {
		env.Cluster.SetSelectivity("NumVertices", "Graphs", cal.VertSelectivity)
		env.Cluster.SetSelectivity("TotalLength", "Graphs", cal.LenSelectivity)
		sql := sequoia.Q4(cal.MaxVerts, cal.MaxLength)
		for _, st := range strategies {
			b.Run(fmt.Sprintf("sel%.0f%%/%s", cal.Target*100, st.name), func(b *testing.B) {
				runQuery(b, sql, st.s)
			})
		}
	}
}

// BenchmarkFig10b: the transmitted-volume view of the same sweep at its
// most cited point (50% selectivity).
func BenchmarkFig10b(b *testing.B) {
	env := benchEnv(b)
	cals, err := sequoia.CalibrateQ4(envStore(b, env), []float64{0.5})
	if err != nil {
		b.Fatal(err)
	}
	sql := sequoia.Q4(cals[0].MaxVerts, cals[0].MaxLength)
	for _, st := range strategies {
		b.Run("sel50%/"+st.name, func(b *testing.B) {
			runQuery(b, sql, st.s)
		})
	}
}

// BenchmarkFig11: the distributed join Q5.
func BenchmarkFig11(b *testing.B) {
	for _, st := range strategies {
		b.Run("Q5_Join/"+st.name, func(b *testing.B) {
			runQuery(b, sequoia.Q5, st.s)
		})
	}
}

// BenchmarkAblationVRFPlanning measures optimizer cost for the paper's
// hardest query shape (the metric-accuracy ablation itself is reported
// by cmd/mocha-bench -experiment ablation-vrf).
func BenchmarkAblationVRFPlanning(b *testing.B) {
	env := benchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := env.Cluster.Explain(sequoia.Q5); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationCodeCache compares repeated execution with the DAP
// class cache enabled vs disabled (the section 3.6 caching extension).
func BenchmarkAblationCodeCache(b *testing.B) {
	sql := "SELECT time, AvgEnergy(image) FROM Rasters"
	for _, c := range []struct {
		name    string
		disable bool
	}{{"CacheOn", false}, {"CacheOff", true}} {
		b.Run(c.name, func(b *testing.B) {
			env, err := bench.NewEnv(bench.Options{
				Scale: benchScale, Unshaped: true, DisableDAPCodeCache: c.disable,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer env.Close()
			// Warm the cache (a no-op when disabled).
			if _, err := env.Run(sql, mocha.StrategyCodeShip); err != nil {
				b.Fatal(err)
			}
			var shipped int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m, err := env.Run(sql, mocha.StrategyCodeShip)
				if err != nil {
					b.Fatal(err)
				}
				shipped = m.Stats.CodeClassesShipped
			}
			b.StopTimer()
			b.ReportMetric(float64(shipped), "classes_shipped")
		})
	}
}

// BenchmarkAblationVMNative compares native vs shipped-MVM execution of
// the operator library — the Go analogue of the paper's section 3.9.1
// discussion of Java's interpretation overhead.
func BenchmarkAblationVMNative(b *testing.B) {
	reg := ops.Builtins()
	px := make([]byte, 64*64)
	for i := range px {
		px[i] = byte(i)
	}
	raster := types.NewRaster(64, 64, px)
	d, _ := reg.Lookup("AvgEnergy")

	b.Run("AvgEnergy/Native", func(b *testing.B) {
		s, err := ops.NewNativeScalar(d)
		if err != nil {
			b.Fatal(err)
		}
		args := []types.Object{raster}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.Call(args); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("AvgEnergy/MVM", func(b *testing.B) {
		s, err := ops.NewVMScalar(vm.New(vm.Limits{}), d.Program(), d.Ret)
		if err != nil {
			b.Fatal(err)
		}
		args := []types.Object{raster}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.Call(args); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func envStore(b *testing.B, env *bench.Env) *storage.Store {
	b.Helper()
	// Rebuild a matching store for calibration: the env's own stores are
	// not exported, and calibration only needs the same deterministic
	// Graphs data.
	store, err := storage.OpenStore("", 0)
	if err != nil {
		b.Fatal(err)
	}
	if err := sequoia.GenerateGraphs(store, env.Cfg); err != nil {
		b.Fatal(err)
	}
	return store
}
